#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "async/types.hpp"

namespace st::verify {

/// One data-exchange event at an SB boundary, indexed by *local clock cycle*.
///
/// This is exactly the quantity whose sequence the paper declares unique in a
/// deterministic system: "it is the unique sequence of states, not the
/// instantaneous values of the states, which is the hallmark of deterministic
/// behavior". Absolute picosecond times are deliberately absent — they DO
/// vary across delay perturbations even in a deterministic system.
struct IoEvent {
    enum class Dir : std::uint8_t { kIn, kOut };

    std::uint64_t cycle = 0;  ///< local clock cycle index of the SB
    Dir dir = Dir::kIn;
    std::uint32_t port = 0;  ///< interface index within the SB
    Word word = 0;

    bool operator==(const IoEvent&) const = default;
    auto operator<=>(const IoEvent&) const = default;
};

// --- FNV-1a over event streams -----------------------------------------
// One definition for every consumer: batch fingerprints, the streaming
// checker's rolling per-SB digest, and the golden index all must hash the
// same bytes in the same order (cycle, dir, port, word — each widened to
// u64, least-significant byte first) or the O(1) digest verdict would
// disagree with the event-by-event compare.
inline constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

inline std::uint64_t fnv1a_u64(std::uint64_t h, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xff;
        h *= kFnvPrime;
    }
    return h;
}

inline std::uint64_t fnv1a_event(std::uint64_t h, const IoEvent& e) {
    h = fnv1a_u64(h, e.cycle);
    h = fnv1a_u64(h, static_cast<std::uint64_t>(e.dir));
    h = fnv1a_u64(h, e.port);
    h = fnv1a_u64(h, e.word);
    return h;
}

/// Per-SB cycle-indexed I/O sequence.
struct IoTrace {
    std::string sb_name;
    std::vector<IoEvent> events;

    bool operator==(const IoTrace&) const = default;

    /// 64-bit FNV-1a fingerprint over the event stream.
    std::uint64_t fingerprint() const;

    /// Events restricted to the first `n_cycles` local cycles (the paper
    /// monitors the first 100 local clock cycles of each SB).
    ///
    /// Precondition: `events` is sorted by `cycle`. Every producer in the
    /// repo appends in local-cycle order (a probe observes its SB's clock
    /// monotonically), which lets the cutoff be a binary search + block
    /// copy instead of a full filtering scan.
    IoTrace truncated(std::uint64_t n_cycles) const;
};

/// Traces for a whole SoC, keyed by SB name.
using TraceSet = std::map<std::string, IoTrace>;

/// Structured first-mismatch locus: machine-readable counterpart of
/// TraceDiff::first_mismatch. The streaming checker produces it for free (it
/// is sitting on both events when the compare fails); the batch differs fill
/// it from the same data they already format into the human string.
struct MismatchLocus {
    enum class Kind : std::uint8_t {
        kNone = 0,       ///< no mismatch (diff identical)
        kValue = 1,      ///< event `index` differs between golden and run
        kExtra = 2,      ///< run produced event `index` beyond golden's end
        kShortfall = 3,  ///< run ended with fewer events than golden
        kMissingSb = 4,  ///< golden SB absent from the compared run
    };

    Kind kind = Kind::kNone;
    std::string sb;          ///< SB whose stream mismatched
    std::uint64_t index = 0; ///< event index within that SB's stream
    std::uint64_t cycle = 0; ///< local cycle of the defining event
    std::uint32_t port = 0;  ///< port of the defining event
    std::optional<IoEvent> expected;  ///< golden event (kValue/kShortfall)
    std::optional<IoEvent> actual;    ///< observed event (kValue/kExtra)

    bool valid() const { return kind != Kind::kNone; }
    bool operator==(const MismatchLocus&) const = default;
};

/// Result of comparing a perturbed run against the nominal run.
struct TraceDiff {
    bool identical = true;
    std::string first_mismatch;  ///< human-readable locus, empty when identical
    MismatchLocus locus;         ///< structured locus, kind==kNone when identical

    bool operator==(const TraceDiff&) const = default;
};

// Shared locus formatters: diff_traces, diff_capture, and the streaming
// checker must emit byte-identical first_mismatch strings for the same
// mismatch, so the strings are built in exactly one place.
std::string format_value_mismatch(const std::string& sb, std::uint64_t index,
                                  const IoEvent& expected,
                                  const IoEvent& actual);
std::string format_count_mismatch(const std::string& sb,
                                  std::uint64_t expected_count,
                                  std::uint64_t actual_count);
std::string format_missing_sb(const std::string& sb);
std::string format_extra_event(const std::string& sb, std::uint64_t index,
                               const IoEvent& actual);

/// Compare two trace sets event-by-event. Scans SBs in name order (TraceSet
/// iteration order) and reports the first mismatch it encounters in that
/// order — NOT necessarily the first mismatch in simulated-time order; the
/// streaming pipeline's diff_capture (verify/streaming.hpp) reports the
/// arrival-order locus instead.
TraceDiff diff_traces(const TraceSet& nominal, const TraceSet& other);

/// Fingerprint an entire trace set (order-independent over SBs).
std::uint64_t fingerprint(const TraceSet& traces);

/// Restrict every trace in the set to its first `n_cycles` local cycles.
TraceSet truncated(const TraceSet& traces, std::uint64_t n_cycles);

}  // namespace st::verify
