#include "verify/io_trace.hpp"

#include <algorithm>
#include <sstream>

namespace st::verify {

namespace {

void format_event(std::ostream& os, const IoEvent& e) {
    os << "cycle=" << e.cycle
       << ", dir=" << (e.dir == IoEvent::Dir::kIn ? "in" : "out")
       << ", port=" << e.port << ", word=0x" << std::hex << e.word
       << std::dec;
}

MismatchLocus value_locus(const std::string& sb, std::uint64_t index,
                          const IoEvent& expected, const IoEvent& actual) {
    MismatchLocus l;
    l.kind = MismatchLocus::Kind::kValue;
    l.sb = sb;
    l.index = index;
    l.cycle = actual.cycle;
    l.port = actual.port;
    l.expected = expected;
    l.actual = actual;
    return l;
}

MismatchLocus count_locus(const std::string& sb, std::uint64_t expected_count,
                          std::uint64_t actual_count,
                          const std::vector<IoEvent>& expected_events) {
    MismatchLocus l;
    l.kind = MismatchLocus::Kind::kShortfall;
    l.sb = sb;
    l.index = actual_count;
    // The defining event is the first golden event the run never produced.
    if (actual_count < expected_events.size()) {
        l.expected = expected_events[static_cast<std::size_t>(actual_count)];
        l.cycle = l.expected->cycle;
        l.port = l.expected->port;
    }
    (void)expected_count;
    return l;
}

}  // namespace

std::uint64_t IoTrace::fingerprint() const {
    std::uint64_t h = kFnvOffset;
    for (const auto& e : events) h = fnv1a_event(h, e);
    return h;
}

IoTrace IoTrace::truncated(std::uint64_t n_cycles) const {
    // Events are cycle-sorted (header precondition), so the kept prefix is
    // exactly [begin, partition_point): one binary search, one reserve, one
    // contiguous copy.
    const auto cut = std::partition_point(
        events.begin(), events.end(),
        [n_cycles](const IoEvent& e) { return e.cycle < n_cycles; });
    IoTrace out;
    out.sb_name = sb_name;
    out.events.reserve(static_cast<std::size_t>(cut - events.begin()));
    out.events.assign(events.begin(), cut);
    return out;
}

std::string format_value_mismatch(const std::string& sb, std::uint64_t index,
                                  const IoEvent& expected,
                                  const IoEvent& actual) {
    std::ostringstream os;
    os << "SB '" << sb << "' event " << index << ": nominal(";
    format_event(os, expected);
    os << ") vs perturbed(";
    format_event(os, actual);
    os << ")";
    return os.str();
}

std::string format_count_mismatch(const std::string& sb,
                                  std::uint64_t expected_count,
                                  std::uint64_t actual_count) {
    std::ostringstream os;
    os << "SB '" << sb << "': nominal has " << expected_count
       << " events, compared run has " << actual_count;
    return os.str();
}

std::string format_missing_sb(const std::string& sb) {
    return "SB '" + sb + "' missing from compared run";
}

std::string format_extra_event(const std::string& sb, std::uint64_t index,
                               const IoEvent& actual) {
    std::ostringstream os;
    os << "SB '" << sb << "' event " << index
       << ": beyond nominal end, perturbed(";
    format_event(os, actual);
    os << ")";
    return os.str();
}

TraceDiff diff_traces(const TraceSet& nominal, const TraceSet& other) {
    TraceDiff d;
    for (const auto& [name, trace] : nominal) {
        auto it = other.find(name);
        if (it == other.end()) {
            d.identical = false;
            d.first_mismatch = format_missing_sb(name);
            d.locus.kind = MismatchLocus::Kind::kMissingSb;
            d.locus.sb = name;
            return d;
        }
        const auto& a = trace.events;
        const auto& b = it->second.events;
        const std::size_t n = std::min(a.size(), b.size());
        for (std::size_t i = 0; i < n; ++i) {
            if (a[i] != b[i]) {
                d.identical = false;
                d.first_mismatch = format_value_mismatch(name, i, a[i], b[i]);
                d.locus = value_locus(name, i, a[i], b[i]);
                return d;
            }
        }
        if (a.size() != b.size()) {
            d.identical = false;
            d.first_mismatch =
                format_count_mismatch(name, a.size(), b.size());
            if (b.size() > a.size()) {
                // Run overran the golden: the defining event is the first
                // extra one.
                d.locus.kind = MismatchLocus::Kind::kExtra;
                d.locus.sb = name;
                d.locus.index = a.size();
                d.locus.actual = b[a.size()];
                d.locus.cycle = d.locus.actual->cycle;
                d.locus.port = d.locus.actual->port;
            } else {
                d.locus = count_locus(name, a.size(), b.size(), a);
            }
            return d;
        }
    }
    return d;
}

std::uint64_t fingerprint(const TraceSet& traces) {
    std::uint64_t h = kFnvOffset;
    for (const auto& [name, trace] : traces) {  // map: stable order
        for (char c : name) h = fnv1a_u64(h, static_cast<std::uint64_t>(c));
        h = fnv1a_u64(h, trace.fingerprint());
    }
    return h;
}

TraceSet truncated(const TraceSet& traces, std::uint64_t n_cycles) {
    TraceSet out;
    for (const auto& [name, trace] : traces) {
        out.emplace(name, trace.truncated(n_cycles));
    }
    return out;
}

}  // namespace st::verify
