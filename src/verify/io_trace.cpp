#include "verify/io_trace.hpp"

#include <sstream>

namespace st::verify {

namespace {
constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xff;
        h *= kFnvPrime;
    }
    return h;
}
}  // namespace

std::uint64_t IoTrace::fingerprint() const {
    std::uint64_t h = kFnvOffset;
    for (const auto& e : events) {
        h = fnv1a(h, e.cycle);
        h = fnv1a(h, static_cast<std::uint64_t>(e.dir));
        h = fnv1a(h, e.port);
        h = fnv1a(h, e.word);
    }
    return h;
}

IoTrace IoTrace::truncated(std::uint64_t n_cycles) const {
    IoTrace out;
    out.sb_name = sb_name;
    for (const auto& e : events) {
        if (e.cycle < n_cycles) out.events.push_back(e);
    }
    return out;
}

TraceDiff diff_traces(const TraceSet& nominal, const TraceSet& other) {
    TraceDiff d;
    for (const auto& [name, trace] : nominal) {
        auto it = other.find(name);
        if (it == other.end()) {
            d.identical = false;
            d.first_mismatch = "SB '" + name + "' missing from compared run";
            return d;
        }
        const auto& a = trace.events;
        const auto& b = it->second.events;
        const std::size_t n = std::min(a.size(), b.size());
        for (std::size_t i = 0; i < n; ++i) {
            if (a[i] != b[i]) {
                std::ostringstream os;
                os << "SB '" << name << "' event " << i << ": nominal(cycle="
                   << a[i].cycle << ", dir=" << (a[i].dir == IoEvent::Dir::kIn ? "in" : "out")
                   << ", port=" << a[i].port << ", word=0x" << std::hex << a[i].word
                   << std::dec << ") vs perturbed(cycle=" << b[i].cycle
                   << ", dir=" << (b[i].dir == IoEvent::Dir::kIn ? "in" : "out")
                   << ", port=" << b[i].port << ", word=0x" << std::hex << b[i].word
                   << std::dec << ")";
                d.identical = false;
                d.first_mismatch = os.str();
                return d;
            }
        }
        if (a.size() != b.size()) {
            std::ostringstream os;
            os << "SB '" << name << "': nominal has " << a.size()
               << " events, compared run has " << b.size();
            d.identical = false;
            d.first_mismatch = os.str();
            return d;
        }
    }
    return d;
}

std::uint64_t fingerprint(const TraceSet& traces) {
    std::uint64_t h = kFnvOffset;
    for (const auto& [name, trace] : traces) {  // map: stable order
        for (char c : name) h = fnv1a(h, static_cast<std::uint64_t>(c));
        h = fnv1a(h, trace.fingerprint());
    }
    return h;
}

TraceSet truncated(const TraceSet& traces, std::uint64_t n_cycles) {
    TraceSet out;
    for (const auto& [name, trace] : traces) {
        out.emplace(name, trace.truncated(n_cycles));
    }
    return out;
}

}  // namespace st::verify
