#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "verify/io_trace.hpp"
#include "verify/trace_arena.hpp"

namespace st::verify {

/// Golden traces pre-digested for streaming comparison: per SB (in name
/// order) the truncated event prefix, its count, and its FNV-1a digest.
///
/// Built once per campaign / harness and shared read-only by every run; the
/// index owns copies of the truncated events so its lifetime is independent
/// of the TraceSet it was built from.
class GoldenIndex {
  public:
    struct PerSb {
        std::string name;
        std::vector<IoEvent> events;  ///< golden prefix, cycle < n_cycles
        std::uint64_t digest = kFnvOffset;
    };

    GoldenIndex() = default;
    GoldenIndex(const TraceSet& golden, std::uint64_t n_cycles);

    std::uint64_t n_cycles() const { return n_cycles_; }

    /// Entries in SB-name order (TraceSet iteration order).
    const std::vector<PerSb>& entries() const { return entries_; }

    /// Index into entries() for `name`, or npos when the golden run has no
    /// such SB.
    static constexpr std::size_t npos = static_cast<std::size_t>(-1);
    std::size_t find(const std::string& name) const;

  private:
    std::uint64_t n_cycles_ = 0;
    std::vector<PerSb> entries_;  ///< sorted by name
};

struct StreamingOptions {
    /// On the first mismatching event, ask the bound scheduler to stop the
    /// run at the next event boundary. Sound only where a trace divergence
    /// is the final classification — determinism sweeps, and fault-free
    /// campaigns; a fault campaign must keep simulating because a later
    /// deadlock or invariant violation outranks the divergence
    /// (fuzz::Outcome precedence).
    bool early_exit = true;
};

/// Online golden-trace comparator: observes each captured event as it is
/// produced and compares it positionally against the golden prefix of its
/// SB, keeping a rolling per-SB FNV-1a digest.
///
/// A deterministic run therefore finishes with an O(#SBs) verdict — every
/// digest and event count matches the index, no end-of-run event scan — and
/// a divergent run is classified at the first mismatching event *in arrival
/// order*, at which point (early_exit) the checker requests a cooperative
/// scheduler stop instead of simulating the remaining cycles.
///
/// finish() returns a TraceDiff bit-identical (verdict, first_mismatch
/// string, structured locus) to diff_capture() over the same capture — the
/// offline differ replays the arrival-ordered stream through this same
/// class, so parity holds by construction.
class StreamingChecker {
  public:
    explicit StreamingChecker(const GoldenIndex& golden,
                              StreamingOptions opt = {});
    ~StreamingChecker();

    StreamingChecker(const StreamingChecker&) = delete;
    StreamingChecker& operator=(const StreamingChecker&) = delete;

    /// Subscribe to `cap`: every subsequent RunCapture::record forwards the
    /// event here. Attach before the run starts (or before the events you
    /// care about); the capture keeps the attachment across begin_run().
    void attach(RunCapture& cap);

    /// Observe one captured event (called by RunCapture::record — or by
    /// diff_capture's offline replay). Events at cycle >= n_cycles are
    /// outside the paper's comparison window and ignored.
    void observe(std::size_t slot, const IoEvent& e);

    bool diverged() const { return diverged_; }
    std::uint64_t events_checked() const { return checked_; }

    /// Flip the early-exit policy between runs. A per-worker checker reused
    /// across campaign cases needs this: early exit is sound for a
    /// fault-free case but not for one that injects faults (a later
    /// deadlock / invariant violation outranks the divergence). Takes
    /// effect from the next observed event; call before (or right after)
    /// begin_run.
    void set_early_exit(bool on) { opt_.early_exit = on; }
    bool early_exit() const { return opt_.early_exit; }

    /// The verdict. Callable any time; meaningful once the run has ended
    /// (or the early exit fired). O(#SBs) on the deterministic path.
    TraceDiff finish() const;

    /// Reset per-run comparison state (slots, digests, verdict), keeping
    /// the golden index and the attachment. RunCapture::begin_run calls
    /// this on its attached checker.
    void begin_run();

    /// Called by ~RunCapture so a checker outliving its capture does not
    /// dangle.
    void on_capture_destroyed() {
        cap_ = nullptr;
        reader_ = nullptr;
    }

  private:
    struct Slot {
        std::string sb;
        const GoldenIndex::PerSb* golden = nullptr;  ///< null: not in golden
        std::uint64_t seen = 0;  ///< in-window events observed
        std::uint64_t digest = kFnvOffset;
    };

    friend TraceDiff diff_capture(const GoldenIndex& golden,
                                  const RunCapture& cap);

    Slot& slot_at(std::size_t slot);
    void record_mismatch(MismatchLocus locus, std::string message);
    /// Point the lazy slot-name lookup at `cap` without subscribing (the
    /// offline replay path).
    void set_reader(const RunCapture& cap) { reader_ = &cap; }

    const GoldenIndex* golden_;
    StreamingOptions opt_;
    RunCapture* cap_ = nullptr;           ///< attached (online) capture
    const RunCapture* reader_ = nullptr;  ///< slot-name source
    std::vector<Slot> slots_;
    bool diverged_ = false;
    std::uint64_t checked_ = 0;
    MismatchLocus locus_;
    std::string message_;
};

/// Offline arrival-ordered differ: replay `cap`'s streams merged by arrival
/// seq through a StreamingChecker and return its verdict. This is the batch
/// path of the streaming pipeline — same comparison core, same locus, same
/// strings; only *when* the work happens differs. (Contrast diff_traces,
/// which scans SBs in name order and can pick a different — equally valid —
/// first mismatch when several SBs diverge.)
TraceDiff diff_capture(const GoldenIndex& golden, const RunCapture& cap);

}  // namespace st::verify
