#include "fuzz/campaign.hpp"

#include <algorithm>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "fuzz/case_exec.hpp"
#include "fuzz/checkpoint.hpp"
#include "fuzz/gang_runner.hpp"
#include "fuzz/injector.hpp"
#include "runner/runner.hpp"
#include "system/delay_config.hpp"
#include "system/invariant_monitor.hpp"
#include "system/soc.hpp"
#include "system/testbenches.hpp"

namespace st::fuzz {

namespace {

const char* const kOutcomeNames[kNumOutcomes] = {
    "deterministic",
    "divergent",
    "deadlock",
    "invariant",
};

}  // namespace

const char* outcome_name(Outcome o) {
    return kOutcomeNames[static_cast<std::size_t>(o)];
}

std::optional<Outcome> parse_outcome(const std::string& name) {
    for (std::size_t i = 0; i < kNumOutcomes; ++i) {
        if (name == kOutcomeNames[i]) return static_cast<Outcome>(i);
    }
    return std::nullopt;
}

Campaign::Campaign(CampaignConfig cfg)
    : Campaign(cfg, sys::make_named_spec(cfg.spec_name)) {}

Campaign::Campaign(CampaignConfig cfg, sys::SocSpec spec)
    : cfg_(std::move(cfg)),
      prog_(gang::Program::get(
          std::make_shared<const sys::SocSpec>(std::move(spec)))) {
    // Golden: nominal delays, no faults. Must meet the cycle goal — a spec
    // that cannot run fault-free nominally is a configuration error. The
    // Soc shares the program's spec rather than copying it.
    sys::Soc soc(prog_->spec_ptr());
    bool budget_expired = false;
    const sim::Time deadline =
        case_deadline(max_effective_period(this->spec()), cfg_.cycles);
    if (!run_bounded(soc, cfg_.cycles, deadline, cfg_.max_events,
                     budget_expired)) {
        throw std::runtime_error("Campaign: golden run of spec '" +
                                 cfg_.spec_name +
                                 "' did not reach the cycle goal");
    }
    golden_ = verify::truncated(soc.traces(), cfg_.cycles);
    golden_index_ = verify::GoldenIndex(golden_, cfg_.cycles);

    if (cfg_.warmup_cycles > 0) {
        if (cfg_.warmup_cycles >= cfg_.cycles) {
            throw std::invalid_argument(
                "Campaign: warmup_cycles must be < cycles");
        }
        if (cfg_.warmup_fork) {
            // Shared prefix: nominal delays, no faults, snapshotted once at
            // a slot boundary. The golden run above proved the nominal spec
            // reaches cfg_.cycles, so this shorter leg cannot fail.
            sys::Soc warm(prog_->spec_ptr());
            run_bounded(warm, cfg_.warmup_cycles, deadline, cfg_.max_events,
                        budget_expired);
            warm.settle();
            prefix_ = warm.save_snapshot();
            prefix_plan_ = snap::RewindPlan(prefix_.bytes());
        }
    }
}

CaseRunner::CaseRunner(const Campaign& campaign) : campaign_(&campaign) {
    if (campaign.config().streaming) {
        // One checker for the worker's lifetime: the per-SB slot table and
        // digest state reset per run (RunCapture::begin_run), but the
        // golden binding and the attachment are paid once. Early exit is
        // decided per case in run().
        checker_ = std::make_unique<verify::StreamingChecker>(
            campaign.golden_index());
        checker_->attach(cap_);
    }
}

RunReport CaseRunner::run(const FuzzCase& c) {
    const Campaign& campaign = *campaign_;
    const CampaignConfig& cfg = campaign.config();
    // One spec copy per case (the perturbation), shared with the Soc by
    // pointer — the nominal program spec itself is never copied.
    auto perturbed = std::make_shared<const sys::SocSpec>(
        sys::apply(campaign.spec(), c.delays));
    const sim::Time deadline =
        case_deadline(max_effective_period(*perturbed), cfg.cycles);

    // The capture is reused across cases, backed by this worker thread's
    // arena. In streaming mode the checker stays subscribed across runs
    // (the Soc ctor's begin_run keeps the attachment), so even the restored
    // warm-up prefix is checked online as it is replayed.
    verify::RunCapture& cap = cap_;
    verify::StreamingChecker* checker = checker_.get();
    if (checker != nullptr) {
        // Early exit is sound only where divergence is the final word: a
        // faulted run must complete, because a later deadlock or invariant
        // violation outranks the divergence (Outcome precedence). Checked
        // per case, not per config — a replayed fault counterexample under
        // a fault-free campaign config still carries faults.
        checker->set_early_exit(cfg.classes.empty() && c.faults.empty());
    }

    std::unique_ptr<sys::Soc> soc_owner;
    std::unique_ptr<Injector> injector_owner;
    std::unique_ptr<sys::InvariantMonitor> monitor_owner;
    if (cfg.warmup_cycles == 0) {
        soc_owner = std::make_unique<sys::Soc>(std::move(perturbed), &cap);
        injector_owner = std::make_unique<Injector>(*soc_owner, c.faults);
        monitor_owner = std::make_unique<sys::InvariantMonitor>(*soc_owner);
    } else {
        // Warm-up path: nominal prefix (forked from the shared snapshot or
        // re-simulated), then the case delta applied live. Both prefix
        // variants land in the identical state — restore-equivalence — so
        // the continuation, and therefore the report, is bit-identical.
        soc_owner =
            std::make_unique<sys::Soc>(campaign.program()->spec_ptr(), &cap);
        if (cfg.warmup_fork) {
            soc_owner->restore_snapshot(campaign.warmup_prefix(),
                                        campaign.warmup_prefix_plan());
        } else {
            bool warm_budget = false;
            run_bounded(*soc_owner, cfg.warmup_cycles, deadline,
                        cfg.max_events, warm_budget);
            soc_owner->settle();
        }
        injector_owner = std::make_unique<Injector>(*soc_owner, c.faults);
        monitor_owner = std::make_unique<sys::InvariantMonitor>(*soc_owner);
        sys::apply_live(*soc_owner, c.delays);
    }
    sys::Soc& soc = *soc_owner;
    Injector& injector = *injector_owner;
    sys::InvariantMonitor& monitor = *monitor_owner;

    bool budget_expired = false;
    const bool goal = run_bounded(soc, cfg.cycles, deadline, cfg.max_events,
                                  budget_expired);
    return classify_case(soc, injector.fired(), goal, budget_expired,
                         monitor.violations(), nullptr, checker,
                         campaign.golden_index(), cap);
}

RunReport Campaign::run_case(const FuzzCase& c) const {
    CaseRunner runner(*this);
    return runner.run(c);
}

RunReport probe_case(const sys::SocSpec& spec, const FuzzCase& c,
                     std::uint64_t cycles, std::uint64_t max_events) {
    const sys::SocSpec perturbed = sys::apply(spec, c.delays);
    const sim::Time deadline =
        case_deadline(max_effective_period(perturbed), cycles);
    sys::Soc soc(perturbed);
    Injector injector(soc, c.faults);
    sys::InvariantMonitor monitor(soc);

    bool budget_expired = false;
    const bool goal =
        run_bounded(soc, cycles, deadline, max_events, budget_expired);

    RunReport r;
    r.goal_met = goal;
    r.faults_fired = injector.fired();
    r.events = soc.scheduler().events_executed();
    r.protocol_errors = total_protocol_errors(soc);
    if (!monitor.violations().empty() || r.protocol_errors > 0) {
        r.outcome = Outcome::kInvariantViolation;
        if (!monitor.violations().empty()) {
            r.detail = monitor.violations().front();
        } else {
            std::ostringstream os;
            os << r.protocol_errors << " token protocol error(s)";
            r.detail = os.str();
        }
        return r;
    }
    if (!goal) {
        r.outcome = Outcome::kDeadlocked;
        if (budget_expired) {
            r.detail = "event budget expired (livelock watchdog)";
        } else if (soc.deadlocked()) {
            r.detail = "quiescent with stopped clock(s)";
        } else {
            r.detail = "cycle goal not met before deadline";
        }
        return r;
    }
    r.outcome = Outcome::kDeterministic;
    return r;
}

Fault Campaign::random_fault(sim::Rng& rng) const {
    Fault f;
    f.cls = cfg_.classes[rng.next_below(cfg_.classes.size())];
    switch (f.cls) {
        case FaultClass::kTokenDropWire:
        case FaultClass::kTokenDuplicate:
            f.unit = rng.next_below(std::max<std::size_t>(
                1, spec().rings.size()));
            f.side = rng.next_below(2);
            f.nth = rng.next_in(1, 4);
            break;
        case FaultClass::kSpuriousToken:
            f.unit = rng.next_below(std::max<std::size_t>(
                1, spec().rings.size()));
            f.side = rng.next_below(2);
            f.nth = 1;
            // Inject somewhere in the first half of the run window.
            f.value = rng.next_in(
                1, (cfg_.cycles / 2 + 1) * max_effective_period(spec()));
            break;
        case FaultClass::kFifoStall:
            f.unit = rng.next_below(std::max<std::size_t>(
                1, spec().channels.size()));
            f.nth = rng.next_in(1, 8);
            f.value = rng.next_in(1, 20) * 100;  ///< up to 2 ns extra
            break;
        case FaultClass::kFifoStuckData:
            f.unit = rng.next_below(std::max<std::size_t>(
                1, spec().channels.size()));
            f.nth = rng.next_in(1, 8);
            f.value = rng.next_u64();
            break;
        case FaultClass::kRestartGlitch:
            f.unit = rng.next_below(std::max<std::size_t>(
                1, spec().sbs.size()));
            f.nth = rng.next_in(1, 4);
            f.value = rng.next_in(1, 20) * 100;
            break;
    }
    return f;
}

FuzzCase Campaign::random_case(sim::Rng& rng) const {
    static constexpr unsigned kGrid[] = {50, 75, 100, 150, 200};
    FuzzCase c;
    c.delays = sys::DelayConfig::nominal(spec());
    for (std::size_t d = 0; d < c.delays.dimensions(); ++d) {
        c.delays.set(d, kGrid[rng.next_below(5)]);
    }
    // Clocks stay in the audited envelope: below 75% the bundling-constraint
    // checker (legitimately) trips, which is not the property under test.
    for (auto& pct : c.delays.clock_pct) pct = std::max(pct, 75u);

    if (!cfg_.classes.empty()) {
        const std::size_t n =
            1 + rng.next_below(std::max<std::size_t>(1, cfg_.max_faults));
        for (std::size_t i = 0; i < n; ++i) {
            c.faults.push_back(random_fault(rng));
        }
    }
    return c;
}

CampaignSummary Campaign::run(
    std::uint64_t n_runs, std::uint64_t seed,
    const std::function<void(std::size_t, const FuzzCase&,
                             const RunReport&)>& on_run,
    std::size_t jobs, const CampaignControl& ctl) const {
    ctl.shard.validate();

    // Draw every case up front from the single campaign PRNG: the sequence
    // of draws — and therefore every case — is independent of `jobs` AND of
    // the shard split (each shard replays the full draw sequence and keeps
    // only its indices; drawing is trivially cheap next to simulation).
    std::vector<FuzzCase> cases;       // this shard's cases
    std::vector<std::uint64_t> index;  // their global campaign indices
    cases.reserve(ctl.shard.size_of(n_runs));
    index.reserve(cases.capacity());
    sim::Rng rng(seed);
    for (std::uint64_t i = 0; i < n_runs; ++i) {
        FuzzCase c = random_case(rng);
        if (ctl.shard.selects(i)) {
            cases.push_back(std::move(c));
            index.push_back(i);
        }
    }

    const CampaignKey key =
        make_campaign_key(cfg_, seed, n_runs, ctl.shard);
    CampaignSummary s;
    std::uint64_t done = 0;  // shard-local completed prefix
    if (ctl.resume) {
        if (ctl.checkpoint_path.empty()) {
            throw std::invalid_argument(
                "Campaign: resume requires a checkpoint path");
        }
        CampaignProgress p = load_progress_file(ctl.checkpoint_path);
        if (!(p.key == key)) {
            throw snap::SnapshotError(
                "checkpoint '" + ctl.checkpoint_path +
                "' belongs to a different campaign (spec/seed/runs/"
                "config/shard mismatch)");
        }
        if (p.completed > cases.size()) {
            throw snap::SnapshotError(
                "checkpoint '" + ctl.checkpoint_path +
                "' claims more completed cases than the shard holds");
        }
        s = std::move(p.summary);
        done = p.completed;
    }

    // In-order reduction makes completed work a contiguous prefix of the
    // shard's sequence, so `stop_after` (the deterministic stand-in for a
    // mid-campaign kill) is a simple truncation and every checkpoint image
    // is {key, prefix length, partial summary}.
    std::uint64_t todo = cases.size() - done;
    if (ctl.stop_after != 0 && ctl.stop_after < todo) todo = ctl.stop_after;
    const bool checkpointing = !ctl.checkpoint_path.empty();
    const std::uint64_t every =
        ctl.checkpoint_every != 0 ? ctl.checkpoint_every : 1024;
    std::uint64_t since_image = 0;

    // Per-case reduction, shared by both engines: runs on the calling
    // thread in strict case-index order, so counters, retained failures,
    // the on_run observation sequence and every checkpoint image are
    // bit-identical whatever `jobs` — or the gang width — is.
    const auto reduce_case = [&](std::size_t k, const RunReport& r) {
        const std::uint64_t gi = index[done + k];
        ++s.runs;
        ++s.by_outcome[static_cast<std::size_t>(r.outcome)];
        if (r.faults_fired > 0) ++s.runs_with_fault_fired;
        if (r.outcome != Outcome::kDeterministic) {
            s.add_failure(gi, cases[done + k], r);
        }
        if (on_run) {
            on_run(static_cast<std::size_t>(gi), cases[done + k], r);
        }
        if (checkpointing && (++since_image >= every || k + 1 == todo)) {
            save_progress_file(CampaignProgress{key, done + k + 1, s},
                               ctl.checkpoint_path);
            since_image = 0;
        }
    };

    if (ctl.gang_width > 1) {
        // Gang engine: each work item is a block of up to W consecutive
        // shard-local cases run in lockstep on one worker's W persistent
        // lanes (fuzz::GangRunner). Blocks reduce in order and unpack to
        // the same per-case sequence, and the gang width is deliberately
        // NOT part of the campaign key — a checkpoint written by either
        // engine at any width resumes under the other.
        const std::size_t w = ctl.gang_width;
        const std::size_t blocks =
            (static_cast<std::size_t>(todo) + w - 1) / w;
        runner::sweep_ctx(
            blocks, jobs, [this, w] { return GangRunner(*this, w); },
            [&](GangRunner& g, std::size_t b) {
                const std::size_t lo = b * w;
                const std::size_t hi =
                    std::min<std::size_t>(lo + w, static_cast<std::size_t>(todo));
                return g.run_block(&cases[done + lo], hi - lo);
            },
            [&](std::size_t b, std::vector<RunReport>&& rs) {
                for (std::size_t j = 0; j < rs.size(); ++j) {
                    reduce_case(b * w + j, rs[j]);
                }
            });
        return s;
    }

    // Scalar engine: each work item elaborates, injects, and runs its own
    // private Soc (with its own Scheduler) through its worker's reusable
    // CaseRunner; the golden index is shared read-only.
    runner::sweep_ctx(
        static_cast<std::size_t>(todo), jobs,
        [this] { return CaseRunner(*this); },
        [&](CaseRunner& runner, std::size_t k) {
            return runner.run(cases[done + k]);
        },
        [&](std::size_t k, RunReport&& r) { reduce_case(k, r); });
    return s;
}

CampaignSummary merge_shards(const std::vector<CampaignSummary>& shards) {
    CampaignSummary out;
    std::uint64_t total_failures = 0;
    for (const CampaignSummary& s : shards) {
        out.runs += s.runs;
        for (std::size_t i = 0; i < kNumOutcomes; ++i) {
            out.by_outcome[i] += s.by_outcome[i];
        }
        out.runs_with_fault_fired += s.runs_with_fault_fired;
        total_failures += s.failures.size() + s.failures_dropped;
        out.failures.insert(out.failures.end(), s.failures.begin(),
                            s.failures.end());
    }
    // Re-create the single-process retention decision: order by global
    // index, keep the first kMaxFailures, count the rest as dropped. Sound
    // because each shard retains at least the failures a single process
    // would have (see merge_shards doc).
    std::sort(out.failures.begin(), out.failures.end(),
              [](const CampaignSummary::Failure& a,
                 const CampaignSummary::Failure& b) {
                  return a.index < b.index;
              });
    if (out.failures.size() > CampaignSummary::kMaxFailures) {
        out.failures.resize(CampaignSummary::kMaxFailures);
    }
    out.failures_dropped = total_failures - out.failures.size();
    return out;
}

}  // namespace st::fuzz
