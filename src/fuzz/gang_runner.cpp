#include "fuzz/gang_runner.hpp"

#include "fuzz/case_exec.hpp"
#include "fuzz/injector.hpp"
#include "gang/lockstep.hpp"
#include "system/delay_config.hpp"

namespace st::fuzz {

GangRunner::GangRunner(const Campaign& campaign, std::size_t width,
                       std::uint64_t window)
    : campaign_(&campaign),
      nominal_(sys::DelayConfig::nominal(campaign.spec())),
      window_(window == 0 ? 1 : window) {
    if (width == 0) width = 1;
    gang::Lane::Options opt;
    opt.golden =
        campaign.config().streaming ? &campaign.golden_index() : nullptr;
    opt.monitor = true;
    lanes_.reserve(width);
    for (std::size_t i = 0; i < width; ++i) {
        // Every lane (of every worker) shares the campaign's one Program —
        // spec, pristine image, and rewind plan are elaborated exactly once
        // per process, not once per lane.
        lanes_.push_back(
            std::make_unique<gang::Lane>(campaign.program(), opt));
    }
}

std::vector<RunReport> GangRunner::run_block(const FuzzCase* cases,
                                             std::size_t n) {
    const Campaign& campaign = *campaign_;
    const CampaignConfig& cfg = campaign.config();
    if (n > lanes_.size()) n = lanes_.size();

    std::vector<std::unique_ptr<Injector>> injectors(n);
    std::vector<sim::Time> deadlines(n);
    std::vector<gang::LaneGoal> goals(n);
    for (std::size_t i = 0; i < n; ++i) {
        const FuzzCase& c = cases[i];
        gang::Lane& lane = *lanes_[i];
        deadlines[i] = case_deadline(
            perturbed_max_effective_period(campaign.spec(), c.delays),
            cfg.cycles);
        // Early exit is sound only where divergence is the final word —
        // same per-case decision as the scalar CaseRunner. A case that
        // keeps it off becomes a peel candidate instead.
        const bool fault_free = cfg.classes.empty() && c.faults.empty();
        if (lane.checker() != nullptr) {
            lane.checker()->set_early_exit(fault_free);
        }

        // Per-case setup in the scalar construction order: (prefix), then
        // injector, then the live delay delta. The rewind stands in for
        // "elaborate a fresh Soc": restore-equivalence makes the rewound
        // lane's continuation bit-identical.
        if (cfg.warmup_cycles == 0) {
            lane.rewind();
            injectors[i] = std::make_unique<Injector>(lane.soc(), c.faults);
            sys::apply_live(lane.soc(), c.delays);
        } else {
            if (cfg.warmup_fork) {
                lane.rewind(campaign.warmup_prefix(),
                            campaign.warmup_prefix_plan());
            } else {
                lane.rewind();
                sys::Soc& soc = lane.soc();
                // Live delay registers (ring hops, clock/FIFO scaling) are
                // not snapshot state, so the previous case's delta survives
                // the rewind — restore the nominal point first or the
                // re-simulated prefix is not the scalar's nominal warmup.
                sys::apply_live(soc, nominal_);
                // The scalar path constructs its monitor only at the fork
                // point, so its warmup schedules no per-edge observer
                // events. The lane's monitor is permanent; gate the
                // observer event instead so the re-simulated prefix has
                // the same event count and sequence as the scalar one.
                for (std::size_t s = 0; s < soc.num_sbs(); ++s) {
                    soc.wrapper(s).clock().set_edge_observers_enabled(false);
                }
                bool warm_budget = false;
                run_bounded(soc, cfg.warmup_cycles, deadlines[i],
                            cfg.max_events, warm_budget);
                soc.settle();
                for (std::size_t s = 0; s < soc.num_sbs(); ++s) {
                    soc.wrapper(s).clock().set_edge_observers_enabled(true);
                }
                lane.monitor()->reset();
            }
            injectors[i] = std::make_unique<Injector>(lane.soc(), c.faults);
            sys::apply_live(lane.soc(), c.delays);
        }

        goals[i].soc = &lane.soc();
        goals[i].cycles = cfg.cycles;
        goals[i].deadline = deadlines[i];
        goals[i].max_events = cfg.max_events;
        goals[i].checker = lane.checker();
        goals[i].peel_on_divergence =
            lane.checker() != nullptr && !fault_free;
    }

    const std::vector<gang::LaneStatus> statuses =
        gang::run_lockstep(goals, window_);

    std::vector<RunReport> reports(n);
    for (std::size_t i = 0; i < n; ++i) {
        gang::Lane& lane = *lanes_[i];
        const gang::LaneStatus& st = statuses[i];
        if (st.peeled) {
            reports[i] = finish_peeled(lane, *injectors[i], cases[i],
                                       deadlines[i], st.budget_start);
            continue;
        }
        reports[i] = classify_case(
            lane.soc(), injectors[i]->fired(), st.goal_met,
            st.budget_expired, lane.monitor()->violations(), nullptr,
            lane.checker(), campaign.golden_index(), lane.capture());
    }
    return reports;
}

RunReport GangRunner::finish_peeled(gang::Lane& lane, Injector& injector,
                                    const FuzzCase& c, sim::Time deadline,
                                    std::uint64_t budget_start) {
    const Campaign& campaign = *campaign_;
    const CampaignConfig& cfg = campaign.config();
    ++peels_;

    // Snapshot handoff: settle the lane to a slot boundary and image it,
    // injector trigger counters and pending fault events included.
    lane.soc().settle();
    const snap::Snapshot image = lane.soc().save_snapshot(
        [&injector](snap::StateWriter& w) { injector.save_state(w); });

    if (!finisher_) {
        gang::Lane::Options opt;
        opt.golden =
            cfg.streaming ? &campaign.golden_index() : nullptr;
        opt.monitor = true;
        finisher_ = std::make_unique<gang::Lane>(campaign.program(), opt);
    }
    if (finisher_->checker() != nullptr) {
        // Peeled cases are faulted by construction: divergence already
        // happened and cannot be the final word.
        finisher_->checker()->set_early_exit(false);
    }
    // Re-arm the case's faults on the finisher inside the restore window;
    // the attached checker re-derives its diverged state from the replayed
    // trace prefix, so classification sees the same first mismatch.
    Injector fin_injector(finisher_->soc(), c.faults,
                          /*defer_spurious=*/true);
    finisher_->rewind(image, [&fin_injector](snap::StateReader& r) {
        fin_injector.restore_state(r);
    });
    // Ring hop delays are live registers, not snapshot state — re-apply the
    // case delta (idempotent for the serialized clock/FIFO delays).
    sys::apply_live(finisher_->soc(), c.delays);

    gang::LaneGoal fin;
    fin.soc = &finisher_->soc();
    fin.cycles = cfg.cycles;
    fin.deadline = deadline;
    fin.max_events = cfg.max_events;
    // The livelock budget spans the whole case, not just the suffix: the
    // restored event counter continues from the lane's, so the lane's datum
    // carries over unchanged.
    fin.budget_start = budget_start;
    const std::vector<gang::LaneStatus> st =
        gang::run_lockstep({fin}, /*window=*/~0ull);

    return classify_case(finisher_->soc(), fin_injector.fired(),
                         st[0].goal_met, st[0].budget_expired,
                         lane.monitor()->violations(),
                         &finisher_->monitor()->violations(),
                         finisher_->checker(), campaign.golden_index(),
                         finisher_->capture());
}

}  // namespace st::fuzz
