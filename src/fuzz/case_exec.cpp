#include "fuzz/case_exec.hpp"

#include <algorithm>
#include <sstream>

namespace st::fuzz {

sim::Time max_effective_period(const sys::SocSpec& spec) {
    sim::Time max_p = 1;
    for (const auto& sb : spec.sbs) {
        const sim::Time p =
            sb.clock.base_period * std::max(1u, sb.clock.divider);
        max_p = std::max(max_p, p);
    }
    return max_p;
}

sim::Time perturbed_max_effective_period(const sys::SocSpec& nominal,
                                         const sys::DelayConfig& delays) {
    // Mirrors sys::apply: the only delay dimension entering the period is
    // the clock base period, scaled by clock_pct.
    sim::Time max_p = 1;
    for (std::size_t i = 0; i < nominal.sbs.size(); ++i) {
        const auto& sb = nominal.sbs[i];
        const sim::Time p =
            sim::scale_percent(sb.clock.base_period, delays.clock_pct[i]) *
            std::max(1u, sb.clock.divider);
        max_p = std::max(max_p, p);
    }
    return max_p;
}

bool run_bounded(sys::Soc& soc, std::uint64_t n_cycles, sim::Time deadline,
                 std::uint64_t max_events, bool& budget_expired) {
    soc.start();
    budget_expired = false;
    auto& sched = soc.scheduler();
    const std::uint64_t budget0 = sched.events_executed();
    // O(1) per event: watch one laggard SB at a time (cycle counts only
    // grow), mirroring Soc::run_cycles — the run stops at the same event
    // boundary as the full-scan formulation.
    std::size_t lag = 0;
    for (;;) {
        while (lag < soc.num_sbs() &&
               soc.wrapper(lag).clock().cycles() >= n_cycles) {
            ++lag;
        }
        if (lag == soc.num_sbs()) return true;
        while (soc.wrapper(lag).clock().cycles() < n_cycles) {
            if (sched.stop_requested()) {
                // Cooperative early exit (streaming checker classified the
                // run divergent): at most the event in flight ran past the
                // mismatch.
                return false;
            }
            if (sched.quiescent() || sched.next_event_time() > deadline) {
                return false;
            }
            if (sched.events_executed() - budget0 >= max_events) {
                budget_expired = true;
                return false;
            }
            sched.step();
        }
    }
}

std::uint64_t total_protocol_errors(sys::Soc& soc) {
    std::uint64_t n = 0;
    const auto& spec = soc.spec();
    for (std::size_t r = 0; r < spec.rings.size(); ++r) {
        n += soc.ring_node(r, spec.rings[r].sb_a).protocol_errors();
        n += soc.ring_node(r, spec.rings[r].sb_b).protocol_errors();
    }
    for (std::size_t r = 0; r < spec.multi_rings.size(); ++r) {
        for (const auto& m : spec.multi_rings[r].members) {
            n += soc.multi_ring_node(r, m.sb).protocol_errors();
        }
    }
    return n;
}

RunReport classify_case(sys::Soc& soc, std::uint64_t faults_fired, bool goal,
                        bool budget_expired,
                        const std::vector<std::string>& violations,
                        const std::vector<std::string>* violations_tail,
                        verify::StreamingChecker* checker,
                        const verify::GoldenIndex& golden,
                        const verify::RunCapture& cap) {
    const bool stopped_early = soc.scheduler().stop_requested();

    RunReport r;
    r.goal_met = goal;
    r.faults_fired = faults_fired;
    r.events = soc.scheduler().events_executed();
    r.protocol_errors = total_protocol_errors(soc);

    const bool tail_violation =
        violations_tail != nullptr && !violations_tail->empty();
    if (!violations.empty() || tail_violation || r.protocol_errors > 0) {
        r.outcome = Outcome::kInvariantViolation;
        if (!violations.empty()) {
            r.detail = violations.front();
        } else if (tail_violation) {
            r.detail = violations_tail->front();
        } else {
            std::ostringstream os;
            os << r.protocol_errors << " token protocol error(s)";
            r.detail = os.str();
        }
        return r;
    }
    if (stopped_early && checker != nullptr && checker->diverged()) {
        // The checker classified the run at its first mismatching event and
        // stopped the scheduler; the remaining cycles could only have
        // changed the verdict through an invariant violation (checked
        // above), which early exit forgoes by being enabled only in
        // fault-free campaigns.
        const verify::TraceDiff diff = checker->finish();
        r.outcome = Outcome::kTraceDivergent;
        r.detail = diff.first_mismatch;
        r.locus = diff.locus;
        return r;
    }
    if (!goal) {
        r.outcome = Outcome::kDeadlocked;
        if (budget_expired) {
            r.detail = "event budget expired (livelock watchdog)";
        } else if (soc.deadlocked()) {
            r.detail = "quiescent with stopped clock(s)";
        } else {
            r.detail = "cycle goal not met before deadline";
        }
        return r;
    }
    // Verdict: online (O(#SBs) for a deterministic run) or offline over the
    // arrival-ordered capture — the two are bit-identical by construction.
    const verify::TraceDiff diff = checker != nullptr
                                       ? checker->finish()
                                       : verify::diff_capture(golden, cap);
    if (!diff.identical) {
        r.outcome = Outcome::kTraceDivergent;
        r.detail = diff.first_mismatch;
        r.locus = diff.locus;
        return r;
    }
    r.outcome = Outcome::kDeterministic;
    return r;
}

}  // namespace st::fuzz
