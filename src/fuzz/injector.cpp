#include "fuzz/injector.hpp"

#include <algorithm>
#include <cstring>
#include <map>
#include <stdexcept>
#include <string>

namespace st::fuzz {

namespace {

[[noreturn]] void bad_fault(const Fault& f, const std::string& why) {
    throw std::invalid_argument("Injector: fault '" + f.describe() + "': " +
                                why);
}

}  // namespace

core::TokenNode& Injector::ring_endpoint(sys::Soc& soc,
                                         const Fault& f) const {
    const auto& rings = soc.spec().rings;
    if (f.unit >= rings.size()) bad_fault(f, "ring index out of range");
    if (f.side > 1) bad_fault(f, "ring endpoint must be 0 (a) or 1 (b)");
    const auto& r = rings[f.unit];
    return soc.ring_node(f.unit, f.side == 0 ? r.sb_a : r.sb_b);
}

Injector::Injector(sys::Soc& soc, const std::vector<Fault>& faults,
                   bool defer_spurious)
    : sched_(&soc.scheduler()), soc_(&soc) {
    std::map<core::TokenNode*, std::vector<Trigger>> dup_groups;
    std::map<std::size_t, std::vector<Trigger>> fifo_groups;
    std::map<std::size_t, std::vector<Trigger>> clock_groups;

    for (const Fault& f : faults) {
        if (f.nth == 0 && f.cls != FaultClass::kSpuriousToken) {
            bad_fault(f, "nth is 1-based");
        }
        switch (f.cls) {
            case FaultClass::kTokenDropWire:
                // The ring tags deliveries with the TokenEndpoint* base, not
                // the TokenNode* — match on the same subobject address.
                wire_drops_.push_back(
                    Trigger{f, 0, false,
                            static_cast<const core::TokenEndpoint*>(
                                &ring_endpoint(soc, f))});
                break;
            case FaultClass::kTokenDuplicate:
                dup_groups[&ring_endpoint(soc, f)].push_back(Trigger{f});
                break;
            case FaultClass::kSpuriousToken: {
                auto& node = ring_endpoint(soc, f);
                // Clamp to now so fault lists drawn against time 0 stay
                // legal when injection begins after a warm-up prefix.
                const sim::Time at =
                    std::max<sim::Time>(f.value, soc.scheduler().now());
                const std::size_t idx = spurious_.size();
                spurious_.push_back(Spurious{&node, at, 0, false});
                if (!defer_spurious) {
                    // Untagged on purpose: the spurious transition must not
                    // be droppable by a wire-drop fault installed below.
                    spurious_[idx].seq = soc.scheduler().schedule_at(
                        at, sim::Priority::kDefault, [this, idx] {
                            auto& s = spurious_[idx];
                            s.fired = true;
                            ++fired_;
                            s.node->token_arrive();
                        });
                }
                break;
            }
            case FaultClass::kFifoStall:
            case FaultClass::kFifoStuckData:
                if (f.unit >= soc.num_channels()) {
                    bad_fault(f, "channel index out of range");
                }
                fifo_groups[f.unit].push_back(Trigger{f});
                break;
            case FaultClass::kRestartGlitch:
                if (f.unit >= soc.num_sbs()) {
                    bad_fault(f, "SB index out of range");
                }
                clock_groups[f.unit].push_back(Trigger{f});
                break;
        }
    }

    if (!wire_drops_.empty()) {
        soc.scheduler().set_interceptor(
            [this](const sim::EventTag& tag, sim::Time) {
                if (tag.label == nullptr ||
                    std::strcmp(tag.label, "token.arrive") != 0) {
                    return true;
                }
                bool keep = true;
                for (auto& t : wire_drops_) {
                    if (t.actor != tag.actor) continue;
                    ++t.seen;
                    if (!t.done && t.seen == t.fault.nth) {
                        t.done = true;
                        ++fired_;
                        keep = false;
                    }
                }
                return keep;
            });
    }

    for (auto& [node, triggers] : dup_groups) {
        node_triggers_.push_back(std::move(triggers));
        const std::size_t g = node_triggers_.size() - 1;
        hooked_nodes_.push_back(node);
        node->set_pass_fault([this, g] {
            unsigned copies = 1;
            for (auto& t : node_triggers_[g]) {
                ++t.seen;
                if (!t.done && t.seen == t.fault.nth) {
                    t.done = true;
                    ++fired_;
                    copies = 2;
                }
            }
            return copies;
        });
    }

    for (auto& [channel, triggers] : fifo_groups) {
        fifo_triggers_.push_back(std::move(triggers));
        const std::size_t g = fifo_triggers_.size() - 1;
        hooked_fifos_.push_back(channel);
        soc.fifo(channel).set_stage_fault(
            [this, g](std::size_t, Word) {
                achan::SelfTimedFifo::StageFault out;
                for (auto& t : fifo_triggers_[g]) {
                    ++t.seen;
                    if (!t.done && t.seen == t.fault.nth) {
                        t.done = true;
                        ++fired_;
                        if (t.fault.cls == FaultClass::kFifoStall) {
                            out.extra_delay += t.fault.value;
                        } else {
                            out.force_word = t.fault.value;
                        }
                    }
                }
                return out;
            });
    }

    for (auto& [sb, triggers] : clock_groups) {
        clock_triggers_.push_back(std::move(triggers));
        const std::size_t g = clock_triggers_.size() - 1;
        hooked_clocks_.push_back(sb);
        soc.wrapper(sb).clock().set_restart_fault([this, g] {
            sim::Time extra = 0;
            for (auto& t : clock_triggers_[g]) {
                ++t.seen;
                if (!t.done && t.seen == t.fault.nth) {
                    t.done = true;
                    ++fired_;
                    extra += t.fault.value;
                }
            }
            return extra;
        });
    }
}

void Injector::detach() {
    if (soc_ == nullptr) return;
    if (!wire_drops_.empty()) sched_->set_interceptor({});
    for (auto* node : hooked_nodes_) node->set_pass_fault({});
    for (const std::size_t i : hooked_fifos_) soc_->fifo(i).set_stage_fault({});
    for (const std::size_t sb : hooked_clocks_) {
        soc_->wrapper(sb).clock().set_restart_fault({});
    }
    soc_ = nullptr;
}

void Injector::save_state(snap::StateWriter& w) const {
    const auto put_group = [&w](const std::vector<Trigger>& g) {
        w.u64(g.size());
        for (const auto& t : g) {
            w.u64(t.seen);
            w.b(t.done);
        }
    };
    w.begin("inject");
    w.u64(fired_);
    put_group(wire_drops_);
    w.u64(node_triggers_.size());
    for (const auto& g : node_triggers_) put_group(g);
    w.u64(fifo_triggers_.size());
    for (const auto& g : fifo_triggers_) put_group(g);
    w.u64(clock_triggers_.size());
    for (const auto& g : clock_triggers_) put_group(g);
    w.u64(spurious_.size());
    for (const auto& s : spurious_) {
        w.b(s.fired);
        w.u64(s.t);
        w.u64(s.seq);
    }
    w.end();
}

void Injector::restore_state(snap::StateReader& r) {
    const auto get_group = [&r](std::vector<Trigger>& g) {
        const std::uint64_t n = r.u64();
        if (n != g.size()) {
            throw snap::SnapshotError(
                "injector fault list does not match the snapshot");
        }
        for (auto& t : g) {
            t.seen = r.u64();
            t.done = r.b();
        }
    };
    const auto get_groups = [&](std::vector<std::vector<Trigger>>& gs) {
        const std::uint64_t n = r.u64();
        if (n != gs.size()) {
            throw snap::SnapshotError(
                "injector fault list does not match the snapshot");
        }
        for (auto& g : gs) get_group(g);
    };
    r.enter("inject");
    fired_ = r.u64();
    get_group(wire_drops_);
    get_groups(node_triggers_);
    get_groups(fifo_triggers_);
    get_groups(clock_triggers_);
    const std::uint64_t n = r.u64();
    if (n != spurious_.size()) {
        throw snap::SnapshotError(
            "injector fault list does not match the snapshot");
    }
    for (std::size_t idx = 0; idx < spurious_.size(); ++idx) {
        auto& s = spurious_[idx];
        s.fired = r.b();
        s.t = r.u64();
        s.seq = r.u64();
        if (!s.fired) {
            sched_->rearm(s.t, sim::Priority::kDefault, sim::EventTag{},
                          s.seq, [this, idx] {
                              auto& sp = spurious_[idx];
                              sp.fired = true;
                              ++fired_;
                              sp.node->token_arrive();
                          });
        }
    }
    r.leave();
}

}  // namespace st::fuzz
