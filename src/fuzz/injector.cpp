#include "fuzz/injector.hpp"

#include <cstring>
#include <map>
#include <stdexcept>
#include <string>

namespace st::fuzz {

namespace {

[[noreturn]] void bad_fault(const Fault& f, const std::string& why) {
    throw std::invalid_argument("Injector: fault '" + f.describe() + "': " +
                                why);
}

}  // namespace

core::TokenNode& Injector::ring_endpoint(sys::Soc& soc,
                                         const Fault& f) const {
    const auto& rings = soc.spec().rings;
    if (f.unit >= rings.size()) bad_fault(f, "ring index out of range");
    if (f.side > 1) bad_fault(f, "ring endpoint must be 0 (a) or 1 (b)");
    const auto& r = rings[f.unit];
    return soc.ring_node(f.unit, f.side == 0 ? r.sb_a : r.sb_b);
}

Injector::Injector(sys::Soc& soc, const std::vector<Fault>& faults) {
    std::map<core::TokenNode*, std::vector<Trigger>> dup_groups;
    std::map<std::size_t, std::vector<Trigger>> fifo_groups;
    std::map<std::size_t, std::vector<Trigger>> clock_groups;

    for (const Fault& f : faults) {
        if (f.nth == 0 && f.cls != FaultClass::kSpuriousToken) {
            bad_fault(f, "nth is 1-based");
        }
        switch (f.cls) {
            case FaultClass::kTokenDropWire:
                // The ring tags deliveries with the TokenEndpoint* base, not
                // the TokenNode* — match on the same subobject address.
                wire_drops_.push_back(
                    Trigger{f, 0, false,
                            static_cast<const core::TokenEndpoint*>(
                                &ring_endpoint(soc, f))});
                break;
            case FaultClass::kTokenDuplicate:
                dup_groups[&ring_endpoint(soc, f)].push_back(Trigger{f});
                break;
            case FaultClass::kSpuriousToken: {
                auto& node = ring_endpoint(soc, f);
                // Untagged on purpose: the spurious transition must not be
                // droppable by a wire-drop fault installed below.
                soc.scheduler().schedule_at(
                    f.value, sim::Priority::kDefault, [this, &node] {
                        ++fired_;
                        node.token_arrive();
                    });
                break;
            }
            case FaultClass::kFifoStall:
            case FaultClass::kFifoStuckData:
                if (f.unit >= soc.num_channels()) {
                    bad_fault(f, "channel index out of range");
                }
                fifo_groups[f.unit].push_back(Trigger{f});
                break;
            case FaultClass::kRestartGlitch:
                if (f.unit >= soc.num_sbs()) {
                    bad_fault(f, "SB index out of range");
                }
                clock_groups[f.unit].push_back(Trigger{f});
                break;
        }
    }

    if (!wire_drops_.empty()) {
        soc.scheduler().set_interceptor(
            [this](const sim::EventTag& tag, sim::Time) {
                if (tag.label == nullptr ||
                    std::strcmp(tag.label, "token.arrive") != 0) {
                    return true;
                }
                bool keep = true;
                for (auto& t : wire_drops_) {
                    if (t.actor != tag.actor) continue;
                    ++t.seen;
                    if (!t.done && t.seen == t.fault.nth) {
                        t.done = true;
                        ++fired_;
                        keep = false;
                    }
                }
                return keep;
            });
    }

    for (auto& [node, triggers] : dup_groups) {
        node_triggers_.push_back(std::move(triggers));
        const std::size_t g = node_triggers_.size() - 1;
        node->set_pass_fault([this, g] {
            unsigned copies = 1;
            for (auto& t : node_triggers_[g]) {
                ++t.seen;
                if (!t.done && t.seen == t.fault.nth) {
                    t.done = true;
                    ++fired_;
                    copies = 2;
                }
            }
            return copies;
        });
    }

    for (auto& [channel, triggers] : fifo_groups) {
        fifo_triggers_.push_back(std::move(triggers));
        const std::size_t g = fifo_triggers_.size() - 1;
        soc.fifo(channel).set_stage_fault(
            [this, g](std::size_t, Word) {
                achan::SelfTimedFifo::StageFault out;
                for (auto& t : fifo_triggers_[g]) {
                    ++t.seen;
                    if (!t.done && t.seen == t.fault.nth) {
                        t.done = true;
                        ++fired_;
                        if (t.fault.cls == FaultClass::kFifoStall) {
                            out.extra_delay += t.fault.value;
                        } else {
                            out.force_word = t.fault.value;
                        }
                    }
                }
                return out;
            });
    }

    for (auto& [sb, triggers] : clock_groups) {
        clock_triggers_.push_back(std::move(triggers));
        const std::size_t g = clock_triggers_.size() - 1;
        soc.wrapper(sb).clock().set_restart_fault([this, g] {
            sim::Time extra = 0;
            for (auto& t : clock_triggers_[g]) {
                ++t.seen;
                if (!t.done && t.seen == t.fault.nth) {
                    t.done = true;
                    ++fired_;
                    extra += t.fault.value;
                }
            }
            return extra;
        });
    }
}

}  // namespace st::fuzz
