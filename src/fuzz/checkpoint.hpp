#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/campaign.hpp"
#include "runner/runner.hpp"
#include "snap/snapshot.hpp"

namespace st::fuzz {

/// Identity of one (campaign, shard) execution: everything that determines
/// the case sequence and its classification. Two progress images are
/// continuations of the same campaign iff their keys match — resume
/// validates this before trusting a completed-prefix count, and shard merge
/// validates it (modulo the shard fields) before adding summaries.
struct CampaignKey {
    std::string spec_name;
    std::uint64_t cycles = 0;
    std::uint64_t max_events = 0;
    std::uint64_t seed = 0;
    std::uint64_t n_runs = 0;
    std::vector<FaultClass> classes;
    std::uint64_t max_faults = 0;
    std::uint64_t warmup_cycles = 0;
    bool warmup_fork = true;
    bool streaming = true;
    runner::Shard shard;

    bool operator==(const CampaignKey&) const = default;
    /// Equal except for the shard split — the merge-compatibility relation.
    bool same_campaign(const CampaignKey& other) const;
};

CampaignKey make_campaign_key(const CampaignConfig& cfg, std::uint64_t seed,
                              std::uint64_t n_runs, runner::Shard shard);

/// One campaign-progress image. Because Campaign::run reduces results in
/// case-index order, the completed work at any checkpoint is a contiguous
/// prefix of the shard's case sequence — so the whole resumable state is
/// just the key, the prefix length, and the partial summary. No RNG state
/// is saved: cases are re-drawn deterministically from the seed on resume.
struct CampaignProgress {
    CampaignKey key;
    /// Shard-local count of reduced cases (the prefix length).
    std::uint64_t completed = 0;
    CampaignSummary summary;

    bool operator==(const CampaignProgress&) const = default;
};

/// Encode/decode a progress image in the snap chunk format (one
/// "stcampaign" group, currently version 1). decode rejects images whose
/// chunk versions are newer than this build understands (snap::StateReader
/// version discipline) and throws snap::SnapshotError with a clear message
/// on any structural mismatch.
snap::Snapshot encode_progress(const CampaignProgress& p);
CampaignProgress decode_progress(const snap::Snapshot& snap);

/// File round-trip: STSNAP file magic + the chunk image. save is atomic
/// (tmp + rename) so a kill mid-write never leaves a torn checkpoint.
void save_progress_file(const CampaignProgress& p, const std::string& path);
CampaignProgress load_progress_file(const std::string& path);

}  // namespace st::fuzz
