#include "fuzz/fault.hpp"

#include <sstream>

namespace st::fuzz {

const char* fault_class_name(FaultClass cls) {
    switch (cls) {
        case FaultClass::kTokenDropWire: return "token-drop";
        case FaultClass::kTokenDuplicate: return "token-dup";
        case FaultClass::kFifoStall: return "fifo-stall";
        case FaultClass::kFifoStuckData: return "fifo-stuck";
        case FaultClass::kRestartGlitch: return "restart-glitch";
        case FaultClass::kSpuriousToken: return "spurious-token";
    }
    return "?";
}

std::optional<FaultClass> parse_fault_class(const std::string& name) {
    for (const FaultClass cls : all_fault_classes()) {
        if (name == fault_class_name(cls)) return cls;
    }
    return std::nullopt;
}

const std::vector<FaultClass>& all_fault_classes() {
    static const std::vector<FaultClass> classes = {
        FaultClass::kTokenDropWire,  FaultClass::kTokenDuplicate,
        FaultClass::kFifoStall,      FaultClass::kFifoStuckData,
        FaultClass::kRestartGlitch,  FaultClass::kSpuriousToken,
    };
    return classes;
}

std::string Fault::describe() const {
    std::ostringstream os;
    os << fault_class_name(cls) << " unit=" << unit << " side=" << side
       << " nth=" << nth << " value=" << value;
    return os.str();
}

std::size_t FuzzCase::complexity() const {
    std::size_t n = faults.size();
    for (std::size_t d = 0; d < delays.dimensions(); ++d) {
        if (delays.get(d) != 100) ++n;
    }
    return n;
}

}  // namespace st::fuzz
