#include "fuzz/checkpoint.hpp"

#include <utility>

namespace st::fuzz {

namespace {

void write_pct_vector(snap::StateWriter& w, const std::vector<unsigned>& v) {
    w.u64(v.size());
    for (const unsigned pct : v) w.u32(static_cast<std::uint32_t>(pct));
}

std::vector<unsigned> read_pct_vector(snap::StateReader& r) {
    std::vector<unsigned> v(r.u64());
    for (auto& pct : v) pct = r.u32();
    return v;
}

void write_event(snap::StateWriter& w, const verify::IoEvent& e) {
    w.u64(e.cycle);
    w.u8(static_cast<std::uint8_t>(e.dir));
    w.u32(e.port);
    w.u64(e.word);
}

verify::IoEvent read_event(snap::StateReader& r) {
    verify::IoEvent e;
    e.cycle = r.u64();
    e.dir = static_cast<verify::IoEvent::Dir>(r.u8());
    e.port = r.u32();
    e.word = r.u64();
    return e;
}

void write_case(snap::StateWriter& w, std::uint64_t index,
                const FuzzCase& c) {
    w.begin("case");
    w.u64(index);
    write_pct_vector(w, c.delays.fifo_pct);
    write_pct_vector(w, c.delays.ring_ab_pct);
    write_pct_vector(w, c.delays.ring_ba_pct);
    write_pct_vector(w, c.delays.clock_pct);
    w.u64(c.faults.size());
    for (const Fault& f : c.faults) {
        w.u8(static_cast<std::uint8_t>(f.cls));
        w.u64(f.unit);
        w.u64(f.side);
        w.u64(f.nth);
        w.u64(f.value);
    }
    w.end();
}

std::uint64_t read_case(snap::StateReader& r, FuzzCase& c) {
    r.enter("case");
    const std::uint64_t index = r.u64();
    c.delays.fifo_pct = read_pct_vector(r);
    c.delays.ring_ab_pct = read_pct_vector(r);
    c.delays.ring_ba_pct = read_pct_vector(r);
    c.delays.clock_pct = read_pct_vector(r);
    c.faults.resize(r.u64());
    for (Fault& f : c.faults) {
        f.cls = static_cast<FaultClass>(r.u8());
        f.unit = static_cast<std::size_t>(r.u64());
        f.side = static_cast<std::size_t>(r.u64());
        f.nth = r.u64();
        f.value = r.u64();
    }
    r.leave();
    return index;
}

void write_report(snap::StateWriter& w, const RunReport& rep) {
    w.begin("report");
    w.u8(static_cast<std::uint8_t>(rep.outcome));
    w.b(rep.goal_met);
    w.u64(rep.faults_fired);
    w.u64(rep.events);
    w.u64(rep.protocol_errors);
    w.str(rep.detail);
    const verify::MismatchLocus& l = rep.locus;
    w.u8(static_cast<std::uint8_t>(l.kind));
    w.str(l.sb);
    w.u64(l.index);
    w.u64(l.cycle);
    w.u32(l.port);
    w.b(l.expected.has_value());
    if (l.expected) write_event(w, *l.expected);
    w.b(l.actual.has_value());
    if (l.actual) write_event(w, *l.actual);
    w.end();
}

RunReport read_report(snap::StateReader& r) {
    RunReport rep;
    r.enter("report");
    rep.outcome = static_cast<Outcome>(r.u8());
    rep.goal_met = r.b();
    rep.faults_fired = r.u64();
    rep.events = r.u64();
    rep.protocol_errors = r.u64();
    rep.detail = r.str();
    verify::MismatchLocus& l = rep.locus;
    l.kind = static_cast<verify::MismatchLocus::Kind>(r.u8());
    l.sb = r.str();
    l.index = r.u64();
    l.cycle = r.u64();
    l.port = r.u32();
    if (r.b()) l.expected = read_event(r);
    if (r.b()) l.actual = read_event(r);
    r.leave();
    return rep;
}

}  // namespace

bool CampaignKey::same_campaign(const CampaignKey& other) const {
    CampaignKey a = *this;
    CampaignKey b = other;
    a.shard = runner::Shard{};
    b.shard = runner::Shard{};
    return a == b;
}

CampaignKey make_campaign_key(const CampaignConfig& cfg, std::uint64_t seed,
                              std::uint64_t n_runs, runner::Shard shard) {
    CampaignKey k;
    k.spec_name = cfg.spec_name;
    k.cycles = cfg.cycles;
    k.max_events = cfg.max_events;
    k.seed = seed;
    k.n_runs = n_runs;
    k.classes = cfg.classes;
    k.max_faults = cfg.max_faults;
    k.warmup_cycles = cfg.warmup_cycles;
    k.warmup_fork = cfg.warmup_fork;
    k.streaming = cfg.streaming;
    k.shard = shard;
    return k;
}

snap::Snapshot encode_progress(const CampaignProgress& p) {
    snap::StateWriter w;
    w.begin_group("stcampaign");

    w.begin("key");
    w.str(p.key.spec_name);
    w.u64(p.key.cycles);
    w.u64(p.key.max_events);
    w.u64(p.key.seed);
    w.u64(p.key.n_runs);
    w.u64(p.key.classes.size());
    for (const FaultClass cls : p.key.classes) {
        w.u8(static_cast<std::uint8_t>(cls));
    }
    w.u64(p.key.max_faults);
    w.u64(p.key.warmup_cycles);
    w.b(p.key.warmup_fork);
    w.b(p.key.streaming);
    w.u64(p.key.shard.index);
    w.u64(p.key.shard.count);
    w.end();

    w.begin("progress");
    w.u64(p.completed);
    w.end();

    w.begin_group("summary");
    w.begin("counts");
    w.u64(p.summary.runs);
    for (std::size_t i = 0; i < kNumOutcomes; ++i) {
        w.u64(p.summary.by_outcome[i]);
    }
    w.u64(p.summary.runs_with_fault_fired);
    w.u64(p.summary.failures_dropped);
    w.u64(p.summary.failures.size());
    w.end();
    for (const CampaignSummary::Failure& f : p.summary.failures) {
        w.begin_group("failure");
        write_case(w, f.index, f.c);
        write_report(w, f.report);
        w.end();
    }
    w.end();  // summary

    w.end();  // stcampaign
    return snap::Snapshot(w.take());
}

CampaignProgress decode_progress(const snap::Snapshot& snap) {
    CampaignProgress p;
    snap::StateReader r(snap.bytes());
    r.enter("stcampaign");

    r.enter("key");
    p.key.spec_name = r.str();
    p.key.cycles = r.u64();
    p.key.max_events = r.u64();
    p.key.seed = r.u64();
    p.key.n_runs = r.u64();
    p.key.classes.resize(r.u64());
    for (auto& cls : p.key.classes) cls = static_cast<FaultClass>(r.u8());
    p.key.max_faults = r.u64();
    p.key.warmup_cycles = r.u64();
    p.key.warmup_fork = r.b();
    p.key.streaming = r.b();
    p.key.shard.index = r.u64();
    p.key.shard.count = r.u64();
    r.leave();

    r.enter("progress");
    p.completed = r.u64();
    r.leave();

    r.enter("summary");
    r.enter("counts");
    p.summary.runs = r.u64();
    for (std::size_t i = 0; i < kNumOutcomes; ++i) {
        p.summary.by_outcome[i] = r.u64();
    }
    p.summary.runs_with_fault_fired = r.u64();
    p.summary.failures_dropped = r.u64();
    const std::uint64_t n_failures = r.u64();
    r.leave();
    p.summary.failures.reserve(n_failures);
    for (std::uint64_t i = 0; i < n_failures; ++i) {
        r.enter("failure");
        CampaignSummary::Failure f;
        f.index = read_case(r, f.c);
        f.report = read_report(r);
        r.leave();
        p.summary.failures.push_back(std::move(f));
    }
    r.leave();  // summary

    r.leave();  // stcampaign
    if (!r.done()) {
        throw snap::SnapshotError(
            "campaign progress image has trailing bytes");
    }
    return p;
}

void save_progress_file(const CampaignProgress& p, const std::string& path) {
    encode_progress(p).save_file_atomic(path);
}

CampaignProgress load_progress_file(const std::string& path) {
    return decode_progress(snap::Snapshot::load_file(path));
}

}  // namespace st::fuzz
