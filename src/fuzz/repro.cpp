#include "fuzz/repro.hpp"

#include <sstream>
#include <stdexcept>

#include "system/delay_config.hpp"

namespace st::fuzz {

namespace {

[[noreturn]] void bad_line(std::size_t lineno, const std::string& why) {
    throw std::invalid_argument("repro line " + std::to_string(lineno) +
                                ": " + why);
}

/// Parse "key=value" with a numeric value.
std::uint64_t parse_kv(const std::string& tok, const char* key,
                       std::size_t lineno) {
    const std::string prefix = std::string(key) + "=";
    if (tok.rfind(prefix, 0) != 0) {
        bad_line(lineno, "expected '" + prefix + "<n>', got '" + tok + "'");
    }
    try {
        return std::stoull(tok.substr(prefix.size()));
    } catch (const std::exception&) {
        bad_line(lineno, "bad number in '" + tok + "'");
    }
}

}  // namespace

Repro Repro::from_case(const std::string& spec_name, std::uint64_t cycles,
                       Outcome expected, const FuzzCase& c) {
    Repro r;
    r.spec_name = spec_name;
    r.cycles = cycles;
    r.expected = expected;
    for (std::size_t d = 0; d < c.delays.dimensions(); ++d) {
        if (c.delays.get(d) != 100) r.delays.emplace_back(d, c.delays.get(d));
    }
    r.faults = c.faults;
    return r;
}

FuzzCase Repro::to_case(const sys::SocSpec& spec) const {
    FuzzCase c;
    c.delays = sys::DelayConfig::nominal(spec);
    for (const auto& [dim, pct] : delays) {
        if (dim >= c.delays.dimensions()) {
            throw std::invalid_argument(
                "repro: delay dimension " + std::to_string(dim) +
                " out of range for spec (has " +
                std::to_string(c.delays.dimensions()) + ")");
        }
        c.delays.set(dim, pct);
    }
    c.faults = faults;
    return c;
}

std::string Repro::to_text() const {
    std::ostringstream os;
    os << "st-fuzz-repro v" << kFormatVersion;
    if (seed) os << " seed=" << *seed;
    if (jobs) os << " jobs=" << *jobs;
    os << "\n";
    os << "# st_fuzz counterexample repro\n";
    os << "spec " << spec_name << "\n";
    os << "cycles " << cycles << "\n";
    if (expected) os << "outcome " << outcome_name(*expected) << "\n";
    for (const auto& [dim, pct] : delays) {
        os << "delay " << dim << " " << pct << "\n";
    }
    for (const Fault& f : faults) {
        os << "fault " << f.describe() << "\n";
    }
    return os.str();
}

Repro Repro::parse(const std::string& text) {
    Repro r;
    r.version = 1;  // headerless files are the pre-header format
    bool saw_spec = false;
    bool saw_directive = false;
    std::istringstream is(text);
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(is, line)) {
        ++lineno;
        const auto hash = line.find('#');
        if (hash != std::string::npos) line.erase(hash);
        std::istringstream ls(line);
        std::string directive;
        if (!(ls >> directive)) continue;  // blank / comment-only line
        if (directive == "st-fuzz-repro") {
            if (saw_directive) {
                bad_line(lineno, "header must be the first directive");
            }
            std::string vtok;
            if (!(ls >> vtok) || vtok.size() < 2 || vtok[0] != 'v') {
                bad_line(lineno, "header needs 'v<version>'");
            }
            try {
                r.version = std::stoull(vtok.substr(1));
            } catch (const std::exception&) {
                bad_line(lineno, "bad version in '" + vtok + "'");
            }
            if (r.version == 0 || r.version > kFormatVersion) {
                bad_line(lineno,
                         "format version " + std::to_string(r.version) +
                             " is not supported by this build (reads up to "
                             "v" +
                             std::to_string(kFormatVersion) +
                             ") — regenerate the repro or upgrade st_fuzz");
            }
            std::string kv;
            while (ls >> kv) {
                if (kv.rfind("seed=", 0) == 0) {
                    r.seed = parse_kv(kv, "seed", lineno);
                } else if (kv.rfind("jobs=", 0) == 0) {
                    r.jobs = parse_kv(kv, "jobs", lineno);
                } else {
                    bad_line(lineno, "unknown header field '" + kv + "'");
                }
            }
            saw_directive = true;
            continue;
        }
        saw_directive = true;
        if (directive == "spec") {
            if (!(ls >> r.spec_name)) bad_line(lineno, "spec needs a name");
            saw_spec = true;
        } else if (directive == "cycles") {
            if (!(ls >> r.cycles)) bad_line(lineno, "cycles needs a number");
        } else if (directive == "outcome") {
            std::string name;
            if (!(ls >> name)) bad_line(lineno, "outcome needs a name");
            const auto o = parse_outcome(name);
            if (!o) bad_line(lineno, "unknown outcome '" + name + "'");
            r.expected = *o;
        } else if (directive == "delay") {
            std::size_t dim = 0;
            unsigned pct = 0;
            if (!(ls >> dim >> pct)) {
                bad_line(lineno, "delay needs '<dim> <pct>'");
            }
            r.delays.emplace_back(dim, pct);
        } else if (directive == "fault") {
            std::string cls_name, unit_tok, side_tok, nth_tok, value_tok;
            if (!(ls >> cls_name >> unit_tok >> side_tok >> nth_tok >>
                  value_tok)) {
                bad_line(lineno,
                         "fault needs '<class> unit=N side=N nth=N value=N'");
            }
            const auto cls = parse_fault_class(cls_name);
            if (!cls) bad_line(lineno, "unknown fault class '" + cls_name + "'");
            Fault f;
            f.cls = *cls;
            f.unit = parse_kv(unit_tok, "unit", lineno);
            f.side = parse_kv(side_tok, "side", lineno);
            f.nth = parse_kv(nth_tok, "nth", lineno);
            f.value = parse_kv(value_tok, "value", lineno);
            r.faults.push_back(f);
        } else {
            bad_line(lineno, "unknown directive '" + directive + "'");
        }
    }
    if (!saw_spec) {
        throw std::invalid_argument("repro: missing 'spec' directive");
    }
    return r;
}

}  // namespace st::fuzz
