#pragma once

#include <cstddef>

#include "fuzz/campaign.hpp"
#include "fuzz/fault.hpp"

namespace st::fuzz {

struct ShrinkResult {
    FuzzCase minimal;
    Outcome outcome = Outcome::kDeterministic;  ///< preserved failure class
    std::size_t attempts = 0;                   ///< run_case invocations
};

/// Greedy dimension-wise reduction of a failing case to a locally minimal
/// counterexample: repeatedly try removing each injected fault and resetting
/// each non-nominal delay dimension to 100%, keeping any change that
/// preserves the original failure outcome class, until a full pass changes
/// nothing. Deterministic (run_case is), so the result replays bit-exact.
///
/// Throws std::invalid_argument if `failing` classifies kDeterministic.
ShrinkResult shrink(const Campaign& campaign, const FuzzCase& failing);

}  // namespace st::fuzz
