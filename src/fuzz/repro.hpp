#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "fuzz/campaign.hpp"
#include "fuzz/fault.hpp"
#include "system/spec.hpp"

namespace st::fuzz {

/// A replayable counterexample: spec-independent text that `st_fuzz --replay`
/// (or any future session) turns back into the exact failing run. Line-based:
///
///     st-fuzz-repro v2 seed=11 jobs=2
///     # comment
///     spec pair
///     cycles 100
///     outcome deadlock
///     delay 3 50        # ring0.ab
///     fault token-drop unit=0 side=1 nth=1 value=0
///
/// The header line carries the format version plus the provenance of the
/// campaign that produced the file (PRNG seed, worker count) so a
/// counterexample can always be traced back to its campaign. Files without
/// a header parse as version 1 (the pre-header format); versions newer than
/// kFormatVersion are rejected with a clear diagnostic rather than
/// misparsed. Only non-nominal delay dimensions are stored (flat
/// DelayConfig index); everything else is implicitly 100%. `outcome`
/// records the classification at save time so a replay can assert it
/// reproduces.
struct Repro {
    /// Newest format this build reads and the version it always writes.
    static constexpr std::uint64_t kFormatVersion = 2;

    std::uint64_t version = kFormatVersion;
    std::optional<std::uint64_t> seed;  ///< campaign PRNG seed provenance
    std::optional<std::uint64_t> jobs;  ///< campaign worker-count provenance
    std::string spec_name;
    std::uint64_t cycles = 100;
    std::optional<Outcome> expected;
    std::vector<std::pair<std::size_t, unsigned>> delays;  ///< (dim, pct)
    std::vector<Fault> faults;

    static Repro from_case(const std::string& spec_name, std::uint64_t cycles,
                           Outcome expected, const FuzzCase& c);

    /// Rebuild the dense case for `spec` (must be the named spec's shape).
    /// Throws std::invalid_argument on an out-of-range delay dimension.
    FuzzCase to_case(const sys::SocSpec& spec) const;

    std::string to_text() const;

    /// Parse repro text. Throws std::invalid_argument with a line-numbered
    /// message on any malformed or unknown directive.
    static Repro parse(const std::string& text);
};

}  // namespace st::fuzz
