#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "fuzz/campaign.hpp"
#include "gang/lane.hpp"
#include "system/delay_config.hpp"

namespace st::fuzz {

class Injector;

/// Gang-execution counterpart of CaseRunner: one worker's W persistent
/// lanes advance a block of up to W fuzz cases in lockstep windows, each
/// lane carrying its own capture, streaming checker, invariant monitor and
/// fault injector. Reports are bit-identical to CaseRunner::run's — both
/// paths share the bounded-run semantics and the classification tail
/// (fuzz/case_exec.hpp); the differential suite in tests/test_gang.cpp
/// holds them to it.
///
/// Peeling: in a faulted case a trace divergence is not classification-
/// final (Outcome precedence), so the lane cannot early-exit — but once
/// diverged it has also stopped matching the golden stream the gang is
/// marching through. Such a lane is withdrawn from the lockstep schedule,
/// settled, snapshotted (injector counters included), and finished on a
/// scalar finisher lane that restores the image, re-arms the pending fault
/// events, and runs the identical suffix — the monitor log concatenates
/// across the handoff, so the report matches the uninterrupted scalar run
/// byte for byte (docs/PERF.md "Gang execution").
///
/// Construct on the worker thread that will call run_block (lane captures
/// pin that thread's trace arena) — runner::sweep_ctx's make_ctx contract.
class GangRunner {
  public:
    /// `window` is the lockstep visit length in events; peel checks happen
    /// only at window boundaries, so tests that must observe a peel on
    /// short cases pass a small window. The default is coarser than
    /// gang::run_lockstep's: on one CPU the switch between lane working
    /// sets is pure cache cost, and a typical case spans only a few
    /// windows (docs/PERF.md "Gang execution").
    GangRunner(const Campaign& campaign, std::size_t width,
               std::uint64_t window = 16384);

    GangRunner(const GangRunner&) = delete;
    GangRunner& operator=(const GangRunner&) = delete;

    std::size_t width() const { return lanes_.size(); }

    /// Run `n <= width()` cases in lockstep; reports[i] corresponds to
    /// cases[i] and is bit-identical to CaseRunner::run(cases[i]).
    std::vector<RunReport> run_block(const FuzzCase* cases, std::size_t n);

    /// Lanes handed off to the scalar finisher so far (instrumentation for
    /// the peel tests).
    std::uint64_t lanes_peeled() const { return peels_; }

  private:
    RunReport finish_peeled(gang::Lane& lane, Injector& injector,
                            const FuzzCase& c, sim::Time deadline,
                            std::uint64_t budget_start);

    const Campaign* campaign_;
    sys::DelayConfig nominal_;  ///< warmup re-simulation delay point
    std::vector<std::unique_ptr<gang::Lane>> lanes_;
    std::unique_ptr<gang::Lane> finisher_;  ///< created on first peel
    std::uint64_t window_ = 2048;
    std::uint64_t peels_ = 0;
};

}  // namespace st::fuzz
