#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "fuzz/fault.hpp"
#include "gang/program.hpp"
#include "runner/runner.hpp"
#include "sim/random.hpp"
#include "snap/snapshot.hpp"
#include "system/spec.hpp"
#include "verify/io_trace.hpp"
#include "verify/streaming.hpp"

namespace st::fuzz {

/// Classification of one fuzz run against the nominal golden run.
///
/// Precedence (strongest diagnosis wins): an invariant violation trumps a
/// deadlock, which trumps a trace divergence. kDeadlocked covers every way
/// the cycle goal was not met — true quiescent deadlock, simulated-time
/// overrun, and the event-budget watchdog (livelock) — because all three are
/// "the system stopped making observable progress".
enum class Outcome : std::uint8_t {
    kDeterministic = 0,
    kTraceDivergent = 1,
    kDeadlocked = 2,
    kInvariantViolation = 3,
};

inline constexpr std::size_t kNumOutcomes = 4;

const char* outcome_name(Outcome o);
std::optional<Outcome> parse_outcome(const std::string& name);

/// Everything observed about one run.
struct RunReport {
    Outcome outcome = Outcome::kDeterministic;
    bool goal_met = false;            ///< every SB reached the cycle goal
    std::uint64_t faults_fired = 0;   ///< injected occurrences that triggered
    std::uint64_t events = 0;         ///< scheduler events this run
    std::uint64_t protocol_errors = 0;
    std::string detail;               ///< first diagnostic locus, if any
    /// Structured trace-mismatch locus (kind != kNone only for
    /// kTraceDivergent): machine-readable counterpart of `detail`, printed
    /// by the shrink reports. Identical between streaming and batch modes.
    verify::MismatchLocus locus;

    bool operator==(const RunReport&) const = default;
};

struct CampaignConfig {
    std::string spec_name = "pair";
    /// Local-cycle comparison window per SB (the paper monitors the first
    /// 100 local cycles of each block).
    std::uint64_t cycles = 100;
    /// Livelock watchdog: per-run scheduler event budget.
    std::uint64_t max_events = 2'000'000;
    /// Fault classes eligible for random cases; empty = fault-free campaign
    /// (pure delay perturbation, the paper's §5 experiment).
    std::vector<FaultClass> classes;
    std::size_t max_faults = 2;  ///< faults per random case (1..max)
    /// Shared warm-up prefix (local cycles, < `cycles`; 0 = off): every case
    /// runs the first `warmup_cycles` at nominal delays with no faults, then
    /// the case's delta is applied live (sys::apply_live + clamped fault
    /// times) and the run continues to `cycles`.
    std::uint64_t warmup_cycles = 0;
    /// With warm-up on: fork each case from one snapshot of the shared
    /// prefix (taken once at construction) instead of re-simulating it.
    /// Restore-equivalence makes the two paths bit-identical; the flag
    /// exists so tests and benches can run the non-forked baseline.
    bool warmup_fork = true;
    /// Streaming verification (default): each run's events are checked
    /// online against the golden index by a verify::StreamingChecker, so a
    /// deterministic run finishes with an O(#SBs) verdict and — in
    /// fault-free campaigns, where a trace divergence is classification-
    /// final — a divergent run stops at the first mismatching event. With
    /// fault classes enabled the online check still replaces the end-of-run
    /// scan but the run always completes, because a later deadlock or
    /// invariant violation outranks the divergence (Outcome precedence).
    /// `false` (st_fuzz --no-streaming) compares offline via
    /// verify::diff_capture instead: bit-identical reports and summaries,
    /// batch timing — the differential-testing and checker-debugging path.
    bool streaming = true;
};

struct CampaignSummary {
    /// One retained failing case, tagged with its *global* campaign index —
    /// the position in the seed's draw sequence, not the position within a
    /// shard. Global indices are what make shard summaries mergeable: the
    /// merged failure list is re-sorted by `index` and re-capped, which
    /// reproduces the single-process retention decision exactly.
    struct Failure {
        std::uint64_t index = 0;
        FuzzCase c;
        RunReport report;

        bool operator==(const Failure&) const = default;
    };

    std::uint64_t runs = 0;
    std::uint64_t by_outcome[kNumOutcomes] = {};
    std::uint64_t runs_with_fault_fired = 0;
    /// The first `kMaxFailures` cases (in campaign order) that did not
    /// classify kDeterministic, with their reports. Bounded for the same
    /// reason verify::SweepResult::add_example is: a long divergent campaign
    /// would otherwise retain every failing case — delays, faults, detail
    /// strings — and grow without bound. `failures_dropped` counts the
    /// overflow so nothing is silently lost.
    std::vector<Failure> failures;
    std::uint64_t failures_dropped = 0;
    static constexpr std::size_t kMaxFailures = 32;

    /// Record a failing case: retained up to kMaxFailures, counted beyond.
    void add_failure(std::uint64_t index, const FuzzCase& c,
                     const RunReport& r) {
        if (failures.size() >= kMaxFailures) {
            ++failures_dropped;
            return;
        }
        failures.push_back(Failure{index, c, r});
    }

    bool operator==(const CampaignSummary&) const = default;
};

/// Merge N shard summaries into the byte-identical single-process summary.
///
/// Counters add. The failure lists concatenate, sort by global index, and
/// re-cap at kMaxFailures — correct because shard retention is a superset
/// of global retention: a failure among the global first-32 has fewer
/// failures before it within its own shard than globally, so its shard
/// necessarily retained it. Shards may be passed in any order; each global
/// index must appear in at most one shard (`runner::Shard` guarantees this).
CampaignSummary merge_shards(const std::vector<CampaignSummary>& shards);

/// Execution controls for Campaign::run that are not part of the case
/// space: sharding, checkpointing, resume, and deterministic truncation.
/// The default-constructed value reproduces the plain `run` behaviour.
struct CampaignControl {
    /// Deterministic 1-of-N split of the campaign's global case indices.
    /// Every shard draws the full case sequence from the seed (drawing is
    /// trivially cheap next to simulation) and executes only its own
    /// indices, so shard results merge to the single-process summary.
    runner::Shard shard;
    /// When non-empty, periodically write a campaign-progress image
    /// (STSNAP chunk format, atomic tmp+rename) to this path, and always
    /// write a final image when the run ends. A completed shard's image
    /// doubles as its mergeable summary file.
    std::string checkpoint_path;
    /// Reduced cases between progress images; 0 = default (1024). The
    /// in-order reduction makes completed work a contiguous prefix, so an
    /// image is just {campaign key, completed count, partial summary}.
    std::uint64_t checkpoint_every = 0;
    /// Load `checkpoint_path`, validate its campaign key against this run's
    /// configuration, and continue from the recorded prefix. The final
    /// summary is bit-identical to the uninterrupted run's.
    bool resume = false;
    /// When > 0, stop cleanly after this many (further) reduced cases —
    /// a deterministic stand-in for killing the process mid-campaign, used
    /// by the resume tests and CLI fixtures. The cut happens at a reduction
    /// boundary, so the written checkpoint is always consistent.
    std::uint64_t stop_after = 0;
    /// Lanes per worker for the gang execution engine (st_fuzz --gang).
    /// <= 1 runs the scalar CaseRunner path; W > 1 runs blocks of W
    /// consecutive cases in lockstep on W persistent lanes per worker
    /// (fuzz::GangRunner), with bit-identical summaries, failure lists,
    /// checkpoints and on_run sequences. Composes freely with `jobs`,
    /// `shard`, and checkpoint/resume; not part of the campaign key, so
    /// checkpoints are portable between engines and widths.
    std::size_t gang_width = 1;
};

class Campaign;

/// Reusable per-worker execution context: one trace capture and (in
/// streaming mode) one golden checker, recycled across every case the
/// worker runs. Constructing these per case was measurable campaign
/// overhead — the checker re-derived its per-SB slot table and the capture
/// re-registered every stream; reuse keeps both warm, alongside the worker
/// thread's trace arena and scheduler slab pool. Construct on the thread
/// that will call run() (the capture pins that thread's arena).
///
/// `Campaign::run` creates one per engine worker via runner::sweep_ctx;
/// run_case() is the convenience wrapper that builds a throwaway one.
class CaseRunner {
  public:
    explicit CaseRunner(const Campaign& campaign);

    CaseRunner(const CaseRunner&) = delete;
    CaseRunner& operator=(const CaseRunner&) = delete;

    /// Elaborate, inject, run bounded, classify — bit-identical to
    /// Campaign::run_case for the same case.
    RunReport run(const FuzzCase& c);

  private:
    const Campaign* campaign_;
    verify::RunCapture cap_;
    std::unique_ptr<verify::StreamingChecker> checker_;
};

/// Seeded property-based campaign over the composed (delays x faults) space
/// of one named testbench spec. Construction runs the nominal golden case
/// once and caches its cycle-indexed I/O traces; every subsequent case is
/// classified against that golden.
class Campaign {
  public:
    explicit Campaign(CampaignConfig cfg);

    /// Campaign over an explicit spec instead of a shipped catalog name —
    /// the entry point for generated and fixture specs (the sva witness
    /// cross-check replays counterexamples against specs that have no
    /// catalog name). `cfg.spec_name` is used only in error messages.
    Campaign(CampaignConfig cfg, sys::SocSpec spec);

    const CampaignConfig& config() const { return cfg_; }
    const sys::SocSpec& spec() const { return prog_->spec(); }
    /// The shared immutable program every engine of this campaign runs —
    /// gang lanes, scalar CaseRunners, and warm-snapshot forks all hold
    /// this one object (process-wide via the Program registry when the
    /// spec carries a program_key).
    const std::shared_ptr<const gang::Program>& program() const {
        return prog_;
    }
    const verify::TraceSet& golden() const { return golden_; }
    const verify::GoldenIndex& golden_index() const { return golden_index_; }

    /// Elaborate, inject, run bounded, classify. Deterministic per case.
    RunReport run_case(const FuzzCase& c) const;

    /// Draw one random case: every delay dimension sampled from the paper's
    /// {50,75,100,150,200}% grid (clocks clamped to >= 75%, the audited
    /// timing envelope), plus 1..max_faults random faults when the class
    /// list is non-empty.
    FuzzCase random_case(sim::Rng& rng) const;

    /// Run `n_runs` random cases from `seed`, executing up to `jobs` cases
    /// concurrently on the st::runner engine (`jobs == 1`, the default, is
    /// the plain serial path; `jobs == 0` means all hardware threads).
    ///
    /// Cases are drawn serially from `seed` before execution and results are
    /// reduced in case-index order, so the returned summary — counters,
    /// retained failures, overflow count — and the `on_run` observation
    /// sequence are bit-identical for every `jobs` value.
    CampaignSummary run(
        std::uint64_t n_runs, std::uint64_t seed,
        const std::function<void(std::size_t, const FuzzCase&,
                                 const RunReport&)>& on_run = {},
        std::size_t jobs = 1) const {
        return run(n_runs, seed, on_run, jobs, CampaignControl{});
    }

    /// `run` with execution controls: sharding (`ctl.shard`), periodic
    /// checkpoint images (`ctl.checkpoint_path` / `checkpoint_every`),
    /// resume from a checkpoint (`ctl.resume`), and deterministic
    /// truncation (`ctl.stop_after`). `on_run` receives *global* case
    /// indices; under a shard it observes only that shard's cases, and on
    /// resume only the cases after the checkpointed prefix.
    CampaignSummary run(
        std::uint64_t n_runs, std::uint64_t seed,
        const std::function<void(std::size_t, const FuzzCase&,
                                 const RunReport&)>& on_run,
        std::size_t jobs, const CampaignControl& ctl) const;

    /// Snapshot of the shared warm-up prefix (empty when warmup_cycles == 0).
    const snap::Snapshot& warmup_prefix() const { return prefix_; }
    /// Pre-validated parse plan for warmup_prefix() (nullptr when off):
    /// every forked case restores the same prefix bytes, so they share one
    /// plan instead of re-parsing the framing per case.
    const snap::RewindPlan* warmup_prefix_plan() const {
        return prefix_plan_.built() ? &prefix_plan_ : nullptr;
    }

  private:
    Fault random_fault(sim::Rng& rng) const;

    CampaignConfig cfg_;
    std::shared_ptr<const gang::Program> prog_;
    verify::TraceSet golden_;
    verify::GoldenIndex golden_index_;
    snap::Snapshot prefix_;
    snap::RewindPlan prefix_plan_;
};

/// Classify one case against `spec` WITHOUT a golden run: elaborate the
/// perturbed spec, inject the faults, run bounded, and report deadlock /
/// invariant-violation outcomes (trace divergence needs a golden and is
/// never produced here — a run that meets the goal cleanly classifies
/// kDeterministic). Exceptions from elaboration propagate to the caller.
///
/// This is the first stage of the sva witness cross-check: deadlock and
/// invariant witnesses are confirmable even for specs whose *nominal* run
/// cannot reach the cycle goal (where the Campaign constructor would throw).
RunReport probe_case(const sys::SocSpec& spec, const FuzzCase& c,
                     std::uint64_t cycles,
                     std::uint64_t max_events = 2'000'000);

}  // namespace st::fuzz
