#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "system/delay_config.hpp"

namespace st::fuzz {

/// The injectable misbehaviours. The paper's determinism claim (§5) is about
/// *benign* delay perturbation; these model broken hardware in the spirit of
/// the self-stabilizing-clocking literature (stuck/late/spurious
/// transitions), and the campaign proves each is either absorbed by
/// construction or *detected* — never a silent divergence for token loss.
enum class FaultClass : std::uint8_t {
    kTokenDropWire,   ///< token transition lost on a ring wire
    kTokenDuplicate,  ///< node emits two tokens at one departure
    kFifoStall,       ///< one self-timed ripple hop delayed by `value` ps
    kFifoStuckData,   ///< one rippling word replaced by `value`
    kRestartGlitch,   ///< one async clock restart delayed by `value` ps
    kSpuriousToken,   ///< spurious token transition delivered at time `value`
};

inline constexpr std::size_t kNumFaultClasses = 6;

const char* fault_class_name(FaultClass cls);
std::optional<FaultClass> parse_fault_class(const std::string& name);
const std::vector<FaultClass>& all_fault_classes();

/// One concrete fault. The meaning of the fields depends on the class:
///
/// class            | unit          | side            | nth          | value
/// -----------------|---------------|-----------------|--------------|-------
/// token-drop       | ring index    | endpoint (0=a)  | Nth arrival  | -
/// token-dup        | ring index    | endpoint (0=a)  | Nth departure| -
/// fifo-stall       | channel index | -               | Nth ripple   | extra ps
/// fifo-stuck       | channel index | -               | Nth ripple   | forced word
/// restart-glitch   | SB index      | -               | Nth restart  | extra ps
/// spurious-token   | ring index    | endpoint (0=a)  | -            | inject time ps
///
/// `nth` is 1-based ("the Nth opportunity fires the fault").
struct Fault {
    FaultClass cls = FaultClass::kTokenDropWire;
    std::size_t unit = 0;
    std::size_t side = 0;
    std::uint64_t nth = 1;
    std::uint64_t value = 0;

    bool operator==(const Fault&) const = default;

    /// "token-drop unit=0 side=1 nth=2 value=0" — also the repro format.
    std::string describe() const;
};

/// One fuzz case: a point in the composed (delays x faults) space.
struct FuzzCase {
    sys::DelayConfig delays;
    std::vector<Fault> faults;

    bool operator==(const FuzzCase&) const = default;

    /// Dimensions the shrinker minimizes: non-nominal delay parameters plus
    /// injected faults.
    std::size_t complexity() const;
};

}  // namespace st::fuzz
