#include "fuzz/shrink.hpp"

#include <stdexcept>

namespace st::fuzz {

ShrinkResult shrink(const Campaign& campaign, const FuzzCase& failing) {
    ShrinkResult res;
    res.minimal = failing;
    res.outcome = campaign.run_case(failing).outcome;
    res.attempts = 1;
    if (res.outcome == Outcome::kDeterministic) {
        throw std::invalid_argument(
            "shrink: the case is not failing (classifies deterministic)");
    }

    const auto still_fails = [&](const FuzzCase& c) {
        ++res.attempts;
        return campaign.run_case(c).outcome == res.outcome;
    };

    bool changed = true;
    while (changed) {
        changed = false;
        // Pass 1: drop whole faults, one at a time.
        for (std::size_t i = 0; i < res.minimal.faults.size();) {
            FuzzCase trial = res.minimal;
            trial.faults.erase(trial.faults.begin() +
                               static_cast<std::ptrdiff_t>(i));
            if (still_fails(trial)) {
                res.minimal = std::move(trial);
                changed = true;  // keep i: the next fault shifted into place
            } else {
                ++i;
            }
        }
        // Pass 2: reset perturbed delay dimensions to nominal.
        for (std::size_t d = 0; d < res.minimal.delays.dimensions(); ++d) {
            if (res.minimal.delays.get(d) == 100) continue;
            FuzzCase trial = res.minimal;
            trial.delays.set(d, 100);
            if (still_fails(trial)) {
                res.minimal = std::move(trial);
                changed = true;
            }
        }
    }
    return res;
}

}  // namespace st::fuzz
