#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/campaign.hpp"
#include "system/delay_config.hpp"
#include "system/soc.hpp"
#include "verify/streaming.hpp"

namespace st::fuzz {

/// Shared case-execution core of the scalar CaseRunner and the gang engine
/// (fuzz::GangRunner). Both paths must produce bit-identical RunReports, so
/// the bounded run loop, the deadline formula, and the outcome-precedence
/// classification live here once — equivalence by shared code, verified by
/// the differential suite in tests/test_gang.cpp.

/// Slowest effective clock period of `spec` (base period x divider).
sim::Time max_effective_period(const sys::SocSpec& spec);

/// The campaign's per-case wall deadline: generous slack over the slowest
/// clock so only a genuine stall (not a merely slow perturbation) misses
/// the cycle goal.
inline sim::Time case_deadline(sim::Time max_period, std::uint64_t cycles) {
    return static_cast<sim::Time>(cycles + 64) * max_period * 8;
}

/// max_effective_period(sys::apply(nominal, delays)) without materializing
/// the perturbed spec — the gang engine never elaborates one.
sim::Time perturbed_max_effective_period(const sys::SocSpec& nominal,
                                         const sys::DelayConfig& delays);

/// Soc::run_cycles plus an event-budget watchdog. Returns true when every
/// SB reached the cycle goal; `budget_expired` distinguishes livelock from
/// quiescence / time overrun.
bool run_bounded(sys::Soc& soc, std::uint64_t n_cycles, sim::Time deadline,
                 std::uint64_t max_events, bool& budget_expired);

/// Sum of protocol-error counters over every token node of `soc`.
std::uint64_t total_protocol_errors(sys::Soc& soc);

/// Classify a finished bounded run into a RunReport (Outcome precedence:
/// invariant > deadlock > divergent). Reads the terminal simulation state
/// (event counter, protocol errors, stop flag, deadlock witness) off `soc`.
///
/// `violations_tail` is non-null only for a peeled gang lane, whose monitor
/// log is split across the lane (prefix) and the scalar finisher (suffix);
/// an uninterrupted run's log is the concatenation, so "any violation" and
/// "first violation" read across both in order.
RunReport classify_case(sys::Soc& soc, std::uint64_t faults_fired, bool goal,
                        bool budget_expired,
                        const std::vector<std::string>& violations,
                        const std::vector<std::string>* violations_tail,
                        verify::StreamingChecker* checker,
                        const verify::GoldenIndex& golden,
                        const verify::RunCapture& cap);

}  // namespace st::fuzz
