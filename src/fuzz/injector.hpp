#pragma once

#include <cstdint>
#include <vector>

#include "fuzz/fault.hpp"
#include "system/soc.hpp"

namespace st::fuzz {

/// Binds a fault list onto an elaborated Soc through the opt-in hooks on
/// the scheduler, token nodes, FIFOs and clocks. Construct after the Soc,
/// before the run; the Injector must outlive the simulation (the installed
/// hooks reference its counters).
///
/// Faults referring to units the spec does not have (ring/channel/SB index
/// out of range) are rejected with std::invalid_argument — a repro file for
/// one spec cannot be silently misapplied to another.
class Injector {
  public:
    /// With `defer_spurious` the spurious-token events are NOT scheduled at
    /// construction — the injector is being built for a Soc about to be
    /// restored from a snapshot, and restore_state re-arms the pending ones
    /// in their original slots instead. Spurious fire times are clamped to
    /// `max(value, now)` so a fault list drawn against time 0 stays legal
    /// when injection starts after a warm-up prefix.
    Injector(sys::Soc& soc, const std::vector<Fault>& faults,
             bool defer_spurious = false);

    Injector(const Injector&) = delete;
    Injector& operator=(const Injector&) = delete;

    ~Injector() { detach(); }

    /// Remove every hook this Injector installed (scheduler interceptor,
    /// node pass faults, FIFO stage faults, clock restart faults), so a
    /// reused Soc never carries a previous case's fault plan into the next
    /// run. Idempotent; the destructor calls it. Pending spurious-token
    /// events are NOT descheduled — a gang lane's reset_from_image drops
    /// them with the rest of the pending set, and a Soc torn down with the
    /// Injector never fires them.
    void detach();

    /// Number of fault occurrences that actually fired during the run.
    std::uint64_t fired() const { return fired_; }

    /// Trigger counters + pending spurious events, as an extra chunk inside
    /// a Soc snapshot (pass via Soc::save_snapshot's extra hook).
    void save_state(snap::StateWriter& w) const;

    /// Counterpart: must run inside Soc::restore_snapshot's extra hook (the
    /// scheduler's restore window), on an Injector constructed with
    /// `defer_spurious = true` from the identical fault list.
    void restore_state(snap::StateReader& r);

  private:
    /// Occurrence-count trigger shared by every hook kind.
    struct Trigger {
        Fault fault;
        std::uint64_t seen = 0;
        bool done = false;
        const void* actor = nullptr;  ///< wire drops: the receiving node
    };

    core::TokenNode& ring_endpoint(sys::Soc& soc, const Fault& f) const;

    /// One scheduled (or deferred) spurious-token transition.
    struct Spurious {
        core::TokenNode* node = nullptr;
        sim::Time t = 0;
        std::uint64_t seq = 0;
        bool fired = false;
    };

    sim::Scheduler* sched_ = nullptr;
    sys::Soc* soc_ = nullptr;  ///< null once detached
    std::uint64_t fired_ = 0;
    std::vector<Spurious> spurious_;
    // Stable storage: hook lambdas capture `this` and index into these.
    std::vector<Trigger> wire_drops_;
    std::vector<std::vector<Trigger>> node_triggers_;   // per faulted node
    std::vector<std::vector<Trigger>> fifo_triggers_;   // per faulted FIFO
    std::vector<std::vector<Trigger>> clock_triggers_;  // per faulted clock
    // Hooked units, for detach().
    std::vector<core::TokenNode*> hooked_nodes_;
    std::vector<std::size_t> hooked_fifos_;
    std::vector<std::size_t> hooked_clocks_;
};

}  // namespace st::fuzz
