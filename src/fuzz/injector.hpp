#pragma once

#include <cstdint>
#include <vector>

#include "fuzz/fault.hpp"
#include "system/soc.hpp"

namespace st::fuzz {

/// Binds a fault list onto an elaborated Soc through the opt-in hooks on
/// the scheduler, token nodes, FIFOs and clocks. Construct after the Soc,
/// before the run; the Injector must outlive the simulation (the installed
/// hooks reference its counters).
///
/// Faults referring to units the spec does not have (ring/channel/SB index
/// out of range) are rejected with std::invalid_argument — a repro file for
/// one spec cannot be silently misapplied to another.
class Injector {
  public:
    Injector(sys::Soc& soc, const std::vector<Fault>& faults);

    Injector(const Injector&) = delete;
    Injector& operator=(const Injector&) = delete;

    /// Number of fault occurrences that actually fired during the run.
    std::uint64_t fired() const { return fired_; }

  private:
    /// Occurrence-count trigger shared by every hook kind.
    struct Trigger {
        Fault fault;
        std::uint64_t seen = 0;
        bool done = false;
        const void* actor = nullptr;  ///< wire drops: the receiving node
    };

    core::TokenNode& ring_endpoint(sys::Soc& soc, const Fault& f) const;

    std::uint64_t fired_ = 0;
    // Stable storage: hook lambdas capture `this` and index into these.
    std::vector<Trigger> wire_drops_;
    std::vector<std::vector<Trigger>> node_triggers_;   // per faulted node
    std::vector<std::vector<Trigger>> fifo_triggers_;   // per faulted FIFO
    std::vector<std::vector<Trigger>> clock_triggers_;  // per faulted clock
};

}  // namespace st::fuzz
