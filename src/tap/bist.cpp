#include "tap/bist.hpp"

namespace st::tap {

BistController::Result BistController::run(std::size_t patterns,
                                           std::uint64_t seed,
                                           std::size_t steps_between) {
    Misr misr;
    Result result;
    std::uint64_t lfsr = seed | 1ull;  // pattern generator (never all-zero)
    const std::size_t payload = test_sb_.scan_chain().payload_bits();

    for (std::size_t p = 0; p < patterns; ++p) {
        // Next pseudo-random pattern.
        std::vector<bool> pattern(payload);
        for (std::size_t i = 0; i < payload; ++i) {
            const bool lsb = lfsr & 1;
            lfsr >>= 1;
            if (lsb) lfsr ^= 0xd800000000000000ull;
            pattern[i] = lfsr & 1;
        }
        // One transaction: the captured response shifts out while the
        // pattern shifts in (test-per-scan).
        const auto response = driver_.scan_transaction(pattern);
        misr.shift_bits(response);
        result.bits_compacted += response.size();
        ++result.patterns;

        // Let the patterned logic run.
        for (std::size_t s = 0; s < steps_between; ++s) {
            test_sb_.single_step();
            test_sb_.wait_for_system_stop();
        }
    }
    result.signature = misr.signature();
    return result;
}

}  // namespace st::tap
