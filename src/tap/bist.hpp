#pragma once

#include <cstdint>
#include <vector>

#include "tap/test_sb.hpp"
#include "tap/tester.hpp"

namespace st::tap {

/// Multiple-input signature register (MISR): compacts a bit stream into a
/// 32-bit signature, as BIST response analyzers do. The paper's §1 argues
/// this style of test is exactly what nondeterminism breaks: "Storage of the
/// possible responses costs die area (for BIST)..." — with synchro-tokens
/// there is a single golden signature.
class Misr {
  public:
    explicit Misr(std::uint32_t seed = 0xffffffffu) : state_(seed) {}

    void shift_bit(bool bit) {
        const bool feedback = (state_ & 1u) != 0;
        state_ >>= 1;
        if (bit) state_ ^= 0x80000000u;
        if (feedback) state_ ^= kPoly;
    }

    void shift_bits(const std::vector<bool>& bits) {
        for (const bool b : bits) shift_bit(b);
    }

    std::uint32_t signature() const { return state_; }

  private:
    static constexpr std::uint32_t kPoly = 0xedb88320u;
    std::uint32_t state_;
};

/// Scan-based logic BIST harness: drives pseudo-random patterns into the
/// system's self-timed scan chain through the Test SB's TAP, steps the
/// system between patterns (tokens released for one round trip), and
/// compacts every captured response into a MISR. Deterministic GALS makes
/// the final signature unique per (seed, patterns, configuration) — across
/// dies, delay corners, and reruns.
class BistController {
  public:
    struct Result {
        std::uint32_t signature = 0;
        std::size_t patterns = 0;
        std::size_t bits_compacted = 0;
    };

    BistController(TesterDriver& driver, TestSb& test_sb)
        : driver_(driver), test_sb_(test_sb) {}

    /// Precondition: tokens are parked (system at a breakpoint).
    /// Each round: capture+compact the current state, scan in the next
    /// pseudo-random pattern, release the tokens for `steps_between` single
    /// steps so the patterned logic runs, re-park.
    Result run(std::size_t patterns, std::uint64_t seed,
               std::size_t steps_between = 1);

  private:
    TesterDriver& driver_;
    TestSb& test_sb_;
};

}  // namespace st::tap
