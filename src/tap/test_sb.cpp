#include "tap/test_sb.hpp"

#include <stdexcept>

namespace st::tap {

/// Ring endpoint inside the Test SB: a TCK-clocked TokenNode in Interlocked
/// mode, a pure combinational bypass in Independent mode.
class TestSb::InterlockPort final : public core::TokenEndpoint {
  public:
    InterlockPort(TestSb& owner, std::string name,
                  core::TokenNode::Params node_params)
        : owner_(owner), node_(std::move(name), node_params) {
        node_.set_pass_fn([this] {
            if (pass_) pass_();
        });
    }

    void token_arrive() override {
        if (owner_.mode_ == Mode::kIndependent) {
            // TCK and token flow must not affect each other: forward the
            // token around the Test SB after a wire delay.
            owner_.soc_.scheduler().schedule_after(
                owner_.params_.bypass_delay, [this] {
                    if (pass_) pass_();
                });
            return;
        }
        node_.token_arrive();
    }

    void set_pass_fn(std::function<void()> fn) override {
        pass_ = std::move(fn);
    }

    core::TokenNode& node() { return node_; }

  private:
    TestSb& owner_;
    core::TokenNode node_;
    std::function<void()> pass_;
};

TestSb::TestSb(sys::Soc& soc, Params p)
    : soc_(soc),
      params_(p),
      tck_(soc.scheduler(), "tck"),
      tap_("test_sb.tap", p.ir_bits, p.idcode),
      chain_("test_sb.scan", p.scan_tail_stages),
      mode_reg_(
          1, [this] { return mode_ == Mode::kIndependent ? 1ull : 0ull; },
          [this](std::uint64_t v) {
              mode_ = (v & 1) ? Mode::kIndependent : Mode::kInterlocked;
          }),
      token_hold_reg_(
          16,
          [this] {
              std::uint64_t mask = 0;
              for (std::size_t i = 0; i < ports_.size(); ++i) {
                  if (ports_[i]->node().debug_hold()) mask |= (1ull << i);
              }
              return mask;
          },
          [this](std::uint64_t mask) {
              for (std::size_t i = 0; i < ports_.size(); ++i) {
                  ports_[i]->node().set_debug_hold((mask >> i) & 1);
              }
          }) {
    tap_.add_instruction(Opcodes::kMode, &mode_reg_, "ST_MODE");
    tap_.add_instruction(Opcodes::kTokenHold, &token_hold_reg_, "ST_TOKENHOLD");
    tap_.add_instruction(Opcodes::kScan, &chain_, "ST_SCAN");
    tck_.add_sink(&tap_);
    // Interlocked mode: a TCK pulse lands only when every test-side node's
    // clken is asserted; Independent mode never gates.
    tck_.set_gate_fn([this] {
        if (mode_ == Mode::kIndependent) return true;
        for (const auto& port : ports_) {
            if (!port->node().clken()) return false;
        }
        return true;
    });
}

TestSb::~TestSb() = default;

void TestSb::attach_ring(std::size_t sb_index,
                         core::TokenNode::Params mission_node,
                         core::TokenNode::Params test_node,
                         sim::Time delay_to, sim::Time delay_from) {
    if (mission_node.initial_holder == test_node.initial_holder) {
        throw std::invalid_argument(
            "TestSb::attach_ring: exactly one initial holder required");
    }
    auto& wrapper = soc_.wrapper(sb_index);
    auto& mission = wrapper.add_node(mission_node);  // throws after soc start
    auto port = std::make_unique<InterlockPort>(
        *this, "test_sb.port" + std::to_string(ports_.size()), test_node);
    tck_.add_sink(&port->node());

    auto ring = std::make_unique<core::TokenRing>(
        soc_.scheduler(), "test_ring_" + wrapper.name());
    ring->add_node(port.get(), delay_from);  // test -> mission
    ring->add_node(&mission, delay_to);      // mission -> test
    ring->finalize();

    ports_.push_back(std::move(port));
    rings_.push_back(std::move(ring));
    ring_sb_.push_back(sb_index);
    mission_nodes_.push_back(&mission);
}

/// Tester -> mission channel: a TCK-clocked output interface gated by the
/// test-side node feeds a self-timed FIFO whose head lands in a new input
/// interface of the mission wrapper.
class TestSb::TxChannel final : public clk::ClockSink {
  public:
    TxChannel(TestSb& owner, std::size_t idx, std::size_t ring_index,
              achan::SelfTimedFifo::Params fifo_params,
              achan::FourPhaseLink::Params link_params)
        : fifo_(owner.soc_.scheduler(), "test_tx" + std::to_string(idx),
                fifo_params),
          iface_(owner.soc_.scheduler(),
                 "test_sb.tx" + std::to_string(idx),
                 owner.ports_[ring_index]->node(), fifo_, link_params) {
        auto& wrapper = owner.soc_.wrapper(owner.ring_sb_[ring_index]);
        wrapper.attach_input(*owner.mission_nodes_[ring_index], fifo_);
        owner.tck_.add_sink(&iface_);
        owner.tck_.add_sink(this);
    }

    void sample(std::uint64_t) override {
        if (!queue.empty() && iface_.can_push()) {
            iface_.push(queue.front());
            queue.pop_front();
        }
    }
    void commit(std::uint64_t) override {}

    std::deque<Word> queue;

  private:
    achan::SelfTimedFifo fifo_;
    core::OutputInterface iface_;
};

/// Mission -> tester channel: a new output interface on the mission wrapper
/// feeds a FIFO whose head lands in a TCK-clocked input interface here.
class TestSb::RxChannel final : public clk::ClockSink {
  public:
    RxChannel(TestSb& owner, std::size_t idx, std::size_t ring_index,
              achan::SelfTimedFifo::Params fifo_params,
              achan::FourPhaseLink::Params link_params)
        : fifo_(owner.soc_.scheduler(), "test_rx" + std::to_string(idx),
                fifo_params),
          iface_(owner.soc_.scheduler(),
                 "test_sb.rx" + std::to_string(idx),
                 owner.ports_[ring_index]->node(), fifo_) {
        auto& wrapper = owner.soc_.wrapper(owner.ring_sb_[ring_index]);
        wrapper.attach_output(*owner.mission_nodes_[ring_index], fifo_,
                              link_params);
        owner.tck_.add_sink(&iface_);
        owner.tck_.add_sink(this);
    }

    void sample(std::uint64_t) override {
        if (iface_.has_data()) queue.push_back(iface_.take());
    }
    void commit(std::uint64_t) override {}

    std::deque<Word> queue;

  private:
    achan::SelfTimedFifo fifo_;
    core::InputInterface iface_;
};

std::size_t TestSb::attach_data_to(std::size_t ring_index,
                                   achan::SelfTimedFifo::Params fifo_params,
                                   achan::FourPhaseLink::Params link_params) {
    tx_channels_.push_back(std::make_unique<TxChannel>(
        *this, tx_channels_.size(), ring_index, fifo_params, link_params));
    return tx_channels_.size() - 1;
}

std::size_t TestSb::attach_data_from(std::size_t ring_index,
                                     achan::SelfTimedFifo::Params fifo_params,
                                     achan::FourPhaseLink::Params link_params) {
    rx_channels_.push_back(std::make_unique<RxChannel>(
        *this, rx_channels_.size(), ring_index, fifo_params, link_params));
    return rx_channels_.size() - 1;
}

void TestSb::host_send(std::size_t tx_channel, Word w) {
    tx_channels_.at(tx_channel)->queue.push_back(w);
}

std::optional<Word> TestSb::host_recv(std::size_t rx_channel) {
    auto& q = rx_channels_.at(rx_channel)->queue;
    if (q.empty()) return std::nullopt;
    const Word w = q.front();
    q.pop_front();
    return w;
}

void TestSb::set_boundary_cells(std::vector<BoundaryCell> cells) {
    if (boundary_) {
        throw std::logic_error("TestSb: boundary cells already installed");
    }
    boundary_ = std::make_unique<BoundaryScanRegister>(std::move(cells));
    tap_.add_instruction(Opcodes::kSample, boundary_.get(), "SAMPLE");
    tap_.add_instruction(Opcodes::kExtest, boundary_.get(), "EXTEST");
    // EXTEST pin control engages while the EXTEST instruction is current.
    tap_.on_instruction([this](std::uint64_t opcode) {
        if (boundary_) boundary_->set_extest(opcode == Opcodes::kExtest);
    });
}

void TestSb::add_kernel_scan_targets() {
    for (std::size_t i = 0; i < soc_.num_sbs(); ++i) {
        auto& w = soc_.wrapper(i);
        owned_targets_.push_back(std::make_unique<KernelScanTarget>(
            w.name() + ".kernel", w.block().kernel()));
        chain_.add_target(owned_targets_.back().get());
    }
}

void TestSb::add_default_scan_targets() {
    for (std::size_t i = 0; i < soc_.num_sbs(); ++i) {
        auto& w = soc_.wrapper(i);
        owned_targets_.push_back(std::make_unique<KernelScanTarget>(
            w.name() + ".kernel", w.block().kernel()));
        chain_.add_target(owned_targets_.back().get());
        for (std::size_t n = 0; n < w.num_nodes(); ++n) {
            owned_targets_.push_back(
                std::make_unique<NodeConfigTarget>(w.node(n)));
            chain_.add_target(owned_targets_.back().get());
        }
        owned_targets_.push_back(
            std::make_unique<ClockConfigTarget>(w.clock()));
        chain_.add_target(owned_targets_.back().get());
    }
}

bool TestSb::clock(bool tms, bool tdi) {
    auto& sched = soc_.scheduler();
    sched.run_until(sched.now() + params_.tck_period);
    tap_.set_tms(tms);
    tap_.set_tdi(tdi);
    return tck_.pulse();
}

core::TokenNode& TestSb::test_node(std::size_t i) {
    return ports_.at(i)->node();
}

void TestSb::hold_all_tokens(bool on) {
    for (auto& port : ports_) port->node().set_debug_hold(on);
}

bool TestSb::all_mission_clocks_stopped() const {
    for (std::size_t i = 0; i < soc_.num_sbs(); ++i) {
        if (!soc_.wrapper(i).clock().stopped()) return false;
    }
    return true;
}

std::uint64_t TestSb::wait_for_system_stop(std::uint64_t max_pulses) {
    for (std::uint64_t n = 0; n < max_pulses; ++n) {
        if (all_mission_clocks_stopped()) return n;
        clock(false, false);  // idle TCK; advances simulated time
    }
    return ~0ull;
}

bool TestSb::single_step(std::uint64_t max_pulses) {
    std::vector<std::uint64_t> received_before;
    received_before.reserve(ports_.size());
    for (auto& p : ports_) {
        received_before.push_back(p->node().tokens_received());
    }
    hold_all_tokens(false);
    // Pump TCK until every token made one round trip back to the Test SB.
    for (std::uint64_t n = 0; n < max_pulses; ++n) {
        bool all_back = true;
        for (std::size_t i = 0; i < ports_.size(); ++i) {
            if (ports_[i]->node().tokens_received() <= received_before[i]) {
                all_back = false;
                break;
            }
        }
        if (all_back) {
            hold_all_tokens(true);
            return true;
        }
        clock(false, false);
    }
    hold_all_tokens(true);
    return false;
}

}  // namespace st::tap
