#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "clock/stoppable_clock.hpp"
#include "sb/kernel.hpp"
#include "snap/snapshot.hpp"
#include "synchro/token_node.hpp"
#include "tap/data_registers.hpp"

namespace st::tap {

/// Something whose state bits a scan chain can read and write.
class ScanTarget {
  public:
    virtual ~ScanTarget() = default;
    virtual std::size_t width() const = 0;
    virtual std::vector<bool> capture_bits() const = 0;
    virtual void update_bits(const std::vector<bool>& bits) = 0;
    virtual std::string name() const = 0;
};

/// Scan access to a kernel's architectural registers via
/// sb::Kernel::scan_state / load_state (64-bit words, LSB shifted first).
class KernelScanTarget final : public ScanTarget {
  public:
    KernelScanTarget(std::string name, sb::Kernel& kernel);

    std::size_t width() const override { return words_ * 64; }
    std::vector<bool> capture_bits() const override;
    void update_bits(const std::vector<bool>& bits) override;
    std::string name() const override { return name_; }

  private:
    std::string name_;
    sb::Kernel& kernel_;
    std::size_t words_;
};

/// Scan access to a token node's hold/recycle registers (8 bits each) plus
/// its debug-hold flag — the paper's "making the hold, recycle, and clock
/// frequency registers in each system accessible through a scan chain".
class NodeConfigTarget final : public ScanTarget {
  public:
    explicit NodeConfigTarget(core::TokenNode& node) : node_(node) {}

    std::size_t width() const override { return 17; }  // 8 + 8 + 1
    std::vector<bool> capture_bits() const override;
    void update_bits(const std::vector<bool>& bits) override;
    std::string name() const override { return node_.name(); }

  private:
    core::TokenNode& node_;
};

/// Scan access to a stoppable clock's divider setting (8 bits) — frequency
/// shmooing support.
class ClockConfigTarget final : public ScanTarget {
  public:
    explicit ClockConfigTarget(clk::StoppableClock& clock) : clock_(clock) {}

    std::size_t width() const override { return 8; }
    std::vector<bool> capture_bits() const override;
    void update_bits(const std::vector<bool>& bits) override;
    std::string name() const override { return clock_.name(); }

  private:
    clk::StoppableClock& clock_;
};

/// Self-timed scan chain: an asynchronous shift register threading a list of
/// scan targets, with both ends synchronized to TCK. Per the paper §4.2,
/// several *empty stages* are appended at the tail so the tail interface can
/// be synchronized to TCK; those padding stages are visible as extra shift
/// cycles, exactly as on silicon.
///
/// Stage layout, TDO end first: [empty tail padding][payload][write-enable].
/// The write-enable control cell (nearest TDI) makes reads non-destructive:
/// Update-DR only propagates the shifted-in image to the targets when it
/// holds 1.
class SelfTimedScanChain final : public DataRegister,
                                 public snap::Snapshottable {
  public:
    explicit SelfTimedScanChain(std::string name,
                                std::size_t empty_tail_stages = 4);

    /// Append a target (shift-out order = order added, after the padding).
    void add_target(ScanTarget* target);

    // --- DataRegister ---
    void capture() override;
    bool shift(bool tdi) override;
    void update() override;
    std::size_t length() const override {
        return payload_bits_ + empty_tail_ + 1;  // +1: write-enable cell
    }

    std::size_t payload_bits() const { return payload_bits_; }
    std::size_t tail_bits() const { return empty_tail_; }
    const std::string& name() const { return name_; }

    // --- Snapshottable (shift-stage image; targets snapshot themselves) ---
    void save_state(snap::StateWriter& w) const override {
        w.begin("scan");
        w.u64(bits_.size());
        for (const bool bit : bits_) w.b(bit);
        w.end();
    }
    void restore_state(snap::StateReader& r) override {
        r.enter("scan");
        const std::uint64_t n = r.u64();
        if (n != bits_.size()) {
            throw snap::SnapshotError("scan chain length mismatch: image " +
                                      std::to_string(n) + ", chain " +
                                      std::to_string(bits_.size()));
        }
        for (auto&& bit : bits_) bit = r.b();
        r.leave();
    }

  private:
    std::string name_;
    std::size_t empty_tail_;
    std::vector<ScanTarget*> targets_;
    std::size_t payload_bits_ = 0;
    std::vector<bool> bits_;  // [0] nearest TDO (tail), grows toward TDI
};

}  // namespace st::tap
