#include "tap/boundary_scan.hpp"

namespace st::tap {

void BoundaryScanRegister::set_extest(bool on) {
    extest_ = on;
    if (extest_) drive_pins();
}

void BoundaryScanRegister::capture() {
    for (std::size_t i = 0; i < cells_.size(); ++i) {
        shift_[i] = cells_[i].sample_fn ? cells_[i].sample_fn() : false;
    }
}

bool BoundaryScanRegister::shift(bool tdi) {
    if (cells_.empty()) return tdi;
    const bool out = shift_.front();
    for (std::size_t i = 0; i + 1 < shift_.size(); ++i) {
        shift_[i] = shift_[i + 1];
    }
    shift_.back() = tdi;
    return out;
}

void BoundaryScanRegister::update() {
    hold_ = shift_;
    if (extest_) drive_pins();
}

void BoundaryScanRegister::drive_pins() {
    for (std::size_t i = 0; i < cells_.size(); ++i) {
        if (cells_[i].drive_fn) cells_[i].drive_fn(hold_[i]);
    }
}

}  // namespace st::tap
