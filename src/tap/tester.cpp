#include "tap/tester.hpp"

#include <stdexcept>

namespace st::tap {

bool TesterDriver::clock(bool tms, bool tdi) {
    // Retry through interlock wait states; each attempt advances simulated
    // time by one TCK period, letting the SoC make progress and tokens
    // return. Bounded so a genuinely deadlocked interlock surfaces.
    for (int attempt = 0; attempt < 100000; ++attempt) {
        ++pulses_;
        if (sb_.clock(tms, tdi)) return sb_.tdo();
    }
    throw std::runtime_error("TesterDriver: interlock never opened");
}

void TesterDriver::reset() {
    for (int i = 0; i < 5; ++i) clock(true, false);
    clock(false, false);  // settle in Run-Test/Idle
}

std::uint64_t TesterDriver::shift_ir(std::uint64_t opcode) {
    // RTI -> Select-DR -> Select-IR -> Capture-IR.
    clock(true, false);
    clock(true, false);
    clock(false, false);
    // The edge spent in Capture-IR loads the ...01 pattern and moves to
    // Shift-IR; it does not shift.
    clock(false, false);
    // Shift ir_bits bits, the last with TMS=1 (exit).
    const std::size_t n = sb_.ir_bits();
    std::uint64_t captured = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const bool last = (i + 1 == n);
        const bool out = clock(last, (opcode >> i) & 1);
        captured |= static_cast<std::uint64_t>(out) << i;
    }
    clock(true, false);   // Exit1-IR -> Update-IR
    clock(false, false);  // -> RTI
    return captured;
}

std::vector<bool> TesterDriver::shift_dr(const std::vector<bool>& in) {
    clock(true, false);   // RTI -> Select-DR
    clock(false, false);  // -> Capture-DR
    clock(false, false);  // capture edge -> Shift-DR (no shift yet)
    std::vector<bool> out;
    out.reserve(in.size());
    for (std::size_t i = 0; i < in.size(); ++i) {
        const bool last = (i + 1 == in.size());
        out.push_back(clock(last, in[i]));
    }
    clock(true, false);   // Exit1-DR -> Update-DR
    clock(false, false);  // -> RTI
    return out;
}

std::uint64_t TesterDriver::shift_dr_word(std::uint64_t value,
                                          std::size_t bits) {
    if (bits == 0 || bits > 64) {
        throw std::invalid_argument("shift_dr_word: 1..64 bits");
    }
    std::vector<bool> in(bits);
    for (std::size_t i = 0; i < bits; ++i) in[i] = (value >> i) & 1;
    const auto out = shift_dr(in);
    std::uint64_t captured = 0;
    for (std::size_t i = 0; i < bits; ++i) {
        if (out[i]) captured |= (1ull << i);
    }
    return captured;
}

std::uint32_t TesterDriver::read_idcode() {
    shift_ir(0x01);
    return static_cast<std::uint32_t>(shift_dr_word(0, 32));
}

std::vector<bool> TesterDriver::scan_transaction(
    const std::vector<bool>& write_image) {
    auto& chain = sb_.scan_chain();
    const std::size_t total = chain.length();
    const std::size_t payload = chain.payload_bits();
    const std::size_t tail = chain.tail_bits();
    if (!write_image.empty() && write_image.size() != payload) {
        throw std::invalid_argument("scan_transaction: image/payload mismatch");
    }
    // Stage layout (see SelfTimedScanChain): after shifting `total` bits
    // t_0..t_{total-1}, stage i holds t_i. Payload stages are [tail,
    // tail+payload); the last stage is the write-enable cell. The first
    // `tail` bits shifted out are the empty padding.
    std::vector<bool> in(total, false);
    if (!write_image.empty()) {
        for (std::size_t k = 0; k < payload; ++k) in[tail + k] = write_image[k];
        in[total - 1] = true;  // write-enable
    }
    shift_ir(TestSb::Opcodes::kScan);
    const auto raw = shift_dr(in);
    return std::vector<bool>(
        raw.begin() + static_cast<std::ptrdiff_t>(tail),
        raw.begin() + static_cast<std::ptrdiff_t>(tail + payload));
}

}  // namespace st::tap
