#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "clock/clock_sink.hpp"
#include "snap/snapshot.hpp"
#include "tap/data_registers.hpp"

namespace st::tap {

/// The 16 TAP controller states of IEEE 1149.1 Figure 6-1.
enum class TapState : std::uint8_t {
    kTestLogicReset,
    kRunTestIdle,
    kSelectDrScan,
    kCaptureDr,
    kShiftDr,
    kExit1Dr,
    kPauseDr,
    kExit2Dr,
    kUpdateDr,
    kSelectIrScan,
    kCaptureIr,
    kShiftIr,
    kExit1Ir,
    kPauseIr,
    kExit2Ir,
    kUpdateIr,
};

const char* to_string(TapState s);

/// TMS-driven next-state function (IEEE 1149.1 state diagram).
TapState tap_next_state(TapState s, bool tms);

/// IEEE 1149.1 TAP controller: state machine, instruction register, and a
/// bank of selectable test data registers. Clocked by the tester's TCK
/// (a clk::TesterClock sink); the tester sets TMS/TDI before each pulse and
/// reads TDO afterwards.
class TapController final : public clk::ClockSink, public snap::Snapshottable {
  public:
    /// `ir_bits` instruction register width; unknown opcodes select BYPASS
    /// as the standard requires.
    TapController(std::string name, std::size_t ir_bits,
                  std::uint32_t idcode);

    TapController(const TapController&) = delete;
    TapController& operator=(const TapController&) = delete;

    /// Map an instruction opcode to a data register. The register object is
    /// borrowed, not owned.
    void add_instruction(std::uint64_t opcode, DataRegister* reg,
                         std::string mnemonic);

    /// Hook invoked when an instruction becomes current (Update-IR).
    void on_instruction(std::function<void(std::uint64_t)> fn) {
        instruction_hook_ = std::move(fn);
    }

    // --- pins ---
    void set_tms(bool v) { tms_ = v; }
    void set_tdi(bool v) { tdi_ = v; }
    bool tdo() const { return tdo_; }
    /// Asynchronous test reset (TRST*): forces Test-Logic-Reset.
    void trst() { reset_state(); }

    // --- ClockSink (TCK rising edges) ---
    void sample(std::uint64_t cycle) override;
    void commit(std::uint64_t cycle) override;

    // --- observation ---
    TapState state() const { return state_; }
    std::uint64_t current_instruction() const { return current_ir_; }
    std::string current_mnemonic() const;
    const std::string& name() const { return name_; }

    // --- Snapshottable (FSM + IR; data registers snapshot separately) ---
    void save_state(snap::StateWriter& w) const override {
        w.begin("tap");
        w.u8(static_cast<std::uint8_t>(state_));
        w.b(tms_);
        w.b(tdi_);
        w.b(tdo_);
        w.u64(ir_shift_);
        w.u64(current_ir_);
        w.end();
    }
    void restore_state(snap::StateReader& r) override {
        r.enter("tap");
        state_ = static_cast<TapState>(r.u8());
        tms_ = r.b();
        tdi_ = r.b();
        tdo_ = r.b();
        ir_shift_ = r.u64();
        current_ir_ = r.u64();
        r.leave();
    }

  private:
    void reset_state();
    DataRegister* current_dr();

    std::string name_;
    std::size_t ir_bits_;
    TapState state_ = TapState::kTestLogicReset;
    bool tms_ = false;
    bool tdi_ = false;
    bool tdo_ = false;

    std::uint64_t ir_shift_ = 0;
    std::uint64_t current_ir_ = 0;
    std::uint64_t idcode_opcode_ = 0;

    BypassRegister bypass_;
    IdcodeRegister idcode_;
    struct Entry {
        DataRegister* reg = nullptr;
        std::string mnemonic;
    };
    std::map<std::uint64_t, Entry> instructions_;
    std::function<void(std::uint64_t)> instruction_hook_;
};

}  // namespace st::tap
