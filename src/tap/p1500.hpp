#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "sb/kernel.hpp"
#include "tap/data_registers.hpp"
#include "tap/scan_chain.hpp"

namespace st::tap {

/// IEEE P1500-style core test wrapper.
///
/// Each embedded core gets a Wrapper Instruction Register (WIR), a Wrapper
/// Bypass (WBY), a Wrapper Boundary Register (WBR) of user-defined cells,
/// and a serial core-internal scan path built from the kernel's
/// architectural state. The chip-level 1149.1 TAP reaches a core by
/// selecting its WIR or WDR as the active data register (the usual
/// 1500-over-1149.1 integration); the WIR value then muxes the WDR path.
class CoreWrapper {
  public:
    /// WIR opcodes.
    enum class WirOp : std::uint8_t {
        kBypass = 0,    ///< WDR = 1-bit WBY
        kCoreScan = 1,  ///< WDR = serial core state (INTEST-style)
        kBoundary = 2,  ///< WDR = WBR cells (EXTEST/SAMPLE-style)
    };

    /// `boundary_bits` cells in the WBR; capture/update hooks let the SoC
    /// integration observe/control the core's pins.
    CoreWrapper(std::string name, sb::Kernel& kernel,
                std::size_t boundary_bits);

    CoreWrapper(const CoreWrapper&) = delete;
    CoreWrapper& operator=(const CoreWrapper&) = delete;

    /// Registers to expose through the chip TAP.
    DataRegister& wir() { return wir_; }
    DataRegister& wdr() { return wdr_; }

    WirOp current() const { return op_; }
    const std::string& name() const { return name_; }
    std::size_t boundary_bits() const { return boundary_bits_; }

    void set_boundary_capture(std::function<std::uint64_t()> fn) {
        boundary_capture_ = std::move(fn);
    }
    void set_boundary_update(std::function<void(std::uint64_t)> fn) {
        boundary_update_ = std::move(fn);
    }
    std::uint64_t boundary_held() const { return boundary_.held(); }

  private:
    /// WDR facade dispatching on the WIR opcode.
    class Wdr final : public DataRegister {
      public:
        explicit Wdr(CoreWrapper& owner) : owner_(owner) {}
        void capture() override { owner_.active().capture(); }
        bool shift(bool tdi) override { return owner_.active().shift(tdi); }
        void update() override { owner_.active().update(); }
        std::size_t length() const override { return owner_.active().length(); }

      private:
        CoreWrapper& owner_;
    };

    DataRegister& active();

    std::string name_;
    std::size_t boundary_bits_;
    std::function<std::uint64_t()> boundary_capture_;
    std::function<void(std::uint64_t)> boundary_update_;

    WirOp op_ = WirOp::kBypass;
    HookRegister wir_;
    BypassRegister wby_;
    HookRegister boundary_;
    KernelScanTarget core_target_;
    SelfTimedScanChain core_chain_;
    Wdr wdr_;
};

}  // namespace st::tap
