#include "tap/data_registers.hpp"

#include <stdexcept>

namespace st::tap {

HookRegister::HookRegister(std::size_t bits, CaptureFn capture_fn,
                           UpdateFn update_fn)
    : bits_(bits),
      capture_fn_(std::move(capture_fn)),
      update_fn_(std::move(update_fn)) {
    if (bits_ == 0 || bits_ > 64) {
        throw std::invalid_argument("HookRegister: 1..64 bits supported");
    }
}

void HookRegister::capture() {
    shift_ = capture_fn_ ? capture_fn_() : 0;
}

bool HookRegister::shift(bool tdi) {
    const bool out = shift_ & 1;
    shift_ >>= 1;
    if (tdi) shift_ |= (1ull << (bits_ - 1));
    return out;
}

void HookRegister::update() {
    held_ = shift_;
    if (update_fn_) update_fn_(held_);
}

}  // namespace st::tap
