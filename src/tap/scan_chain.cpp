#include "tap/scan_chain.hpp"

#include <stdexcept>

namespace st::tap {

KernelScanTarget::KernelScanTarget(std::string name, sb::Kernel& kernel)
    : name_(std::move(name)),
      kernel_(kernel),
      words_(kernel.scan_state().size()) {}

std::vector<bool> KernelScanTarget::capture_bits() const {
    std::vector<bool> bits;
    bits.reserve(words_ * 64);
    for (const std::uint64_t w : kernel_.scan_state()) {
        for (int b = 0; b < 64; ++b) bits.push_back((w >> b) & 1);
    }
    bits.resize(words_ * 64, false);  // kernels with dynamic state: clamp
    return bits;
}

void KernelScanTarget::update_bits(const std::vector<bool>& bits) {
    std::vector<std::uint64_t> words(words_, 0);
    for (std::size_t i = 0; i < words_ * 64 && i < bits.size(); ++i) {
        if (bits[i]) words[i / 64] |= (1ull << (i % 64));
    }
    kernel_.load_state(words);
}

std::vector<bool> NodeConfigTarget::capture_bits() const {
    std::vector<bool> bits(17, false);
    for (int b = 0; b < 8; ++b) bits[static_cast<std::size_t>(b)] = (node_.hold_register() >> b) & 1;
    for (int b = 0; b < 8; ++b) bits[static_cast<std::size_t>(8 + b)] = (node_.recycle_register() >> b) & 1;
    bits[16] = node_.debug_hold();
    return bits;
}

void NodeConfigTarget::update_bits(const std::vector<bool>& bits) {
    if (bits.size() != 17) {
        throw std::invalid_argument("NodeConfigTarget: wrong image width");
    }
    std::uint32_t hold = 0;
    std::uint32_t recycle = 0;
    for (int b = 0; b < 8; ++b) {
        hold |= static_cast<std::uint32_t>(bits[static_cast<std::size_t>(b)]) << b;
        recycle |= static_cast<std::uint32_t>(bits[static_cast<std::size_t>(8 + b)]) << b;
    }
    if (hold != 0) node_.load_hold_register(hold);  // 0 would be illegal
    node_.load_recycle_register(recycle);
    node_.set_debug_hold(bits[16]);
}

std::vector<bool> ClockConfigTarget::capture_bits() const {
    std::vector<bool> bits(8, false);
    const unsigned divider = clock_.divider();
    for (int b = 0; b < 8; ++b) {
        bits[static_cast<std::size_t>(b)] = (divider >> b) & 1;
    }
    return bits;
}

void ClockConfigTarget::update_bits(const std::vector<bool>& bits) {
    unsigned divider = 0;
    for (int b = 0; b < 8 && static_cast<std::size_t>(b) < bits.size(); ++b) {
        divider |= static_cast<unsigned>(bits[static_cast<std::size_t>(b)]) << b;
    }
    if (divider != 0) clock_.set_divider(divider);
}

SelfTimedScanChain::SelfTimedScanChain(std::string name,
                                       std::size_t empty_tail_stages)
    : name_(std::move(name)), empty_tail_(empty_tail_stages) {}

void SelfTimedScanChain::add_target(ScanTarget* target) {
    if (target == nullptr) {
        throw std::invalid_argument("SelfTimedScanChain: null target");
    }
    targets_.push_back(target);
    payload_bits_ += target->width();
}

void SelfTimedScanChain::capture() {
    bits_.assign(length(), false);
    std::size_t pos = empty_tail_;  // padding occupies the TDO end
    for (const auto* t : targets_) {
        for (const bool b : t->capture_bits()) bits_[pos++] = b;
    }
}

bool SelfTimedScanChain::shift(bool tdi) {
    if (bits_.size() != length()) bits_.assign(length(), false);
    const bool out = bits_.front();
    bits_.erase(bits_.begin());
    bits_.push_back(tdi);
    return out;
}

void SelfTimedScanChain::update() {
    if (bits_.size() != length()) return;
    if (!bits_.back()) return;  // write-enable cell low: non-destructive read
    std::size_t pos = empty_tail_;
    for (auto* t : targets_) {
        std::vector<bool> image(bits_.begin() + static_cast<std::ptrdiff_t>(pos),
                                bits_.begin() + static_cast<std::ptrdiff_t>(pos + t->width()));
        t->update_bits(image);
        pos += t->width();
    }
}

}  // namespace st::tap
