#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "clock/tester_clock.hpp"
#include "synchro/token_endpoint.hpp"
#include "synchro/token_node.hpp"
#include "synchro/token_ring.hpp"
#include "system/soc.hpp"
#include "tap/boundary_scan.hpp"
#include "tap/scan_chain.hpp"
#include "tap/tap_controller.hpp"

namespace st::tap {

/// The Test SB (paper §4, §4.2): an IEEE 1149.1 TAP-centred synchronous
/// block clocked by the tester's TCK, participating in token rings with the
/// mission SBs for deterministic tester/SoC data exchange and debug control.
///
/// Two TCK modes (after the Alpha 21264 testability access [14]):
///  * **Interlocked** — the Test SB's token nodes gate TCK: a pulse arriving
///    while a node's recycle expired unanswered is swallowed (a tester wait
///    state), so everything the tester observes happens at deterministic
///    token-schedule points. For on-tester debug and production test.
///  * **Independent** — tokens bypass the Test SB combinationally and TCK
///    never interacts with them; TAP public instructions remain usable but
///    mission-logic data exchange is nondeterministic. For off-tester use
///    and mission mode (where TCK never toggles).
class TestSb {
  public:
    enum class Mode { kInterlocked, kIndependent };

    struct Params {
        sim::Time tck_period = 2500;  ///< tester clock period, ps
        std::size_t ir_bits = 8;
        std::uint32_t idcode = 0x5354'4B31;  // "STK1"
        std::size_t scan_tail_stages = 4;
        sim::Time bypass_delay = 100;  ///< token forward delay, Independent
    };

    /// Standard instruction opcodes beyond BYPASS(all-1) / IDCODE(1).
    struct Opcodes {
        static constexpr std::uint64_t kExtest = 0x00;  // 1149.1 mandatory
        static constexpr std::uint64_t kSample = 0x02;  // SAMPLE/PRELOAD
        static constexpr std::uint64_t kMode = 0x04;
        static constexpr std::uint64_t kTokenHold = 0x05;
        static constexpr std::uint64_t kScan = 0x06;
    };

    /// Must be constructed after Soc elaboration but before soc.start().
    TestSb(sys::Soc& soc, Params p);
    ~TestSb();

    TestSb(const TestSb&) = delete;
    TestSb& operator=(const TestSb&) = delete;

    /// Create a token ring between this Test SB and mission SB `sb_index`.
    /// `mission_node` configures the node placed in the SB's wrapper;
    /// `test_node` the TCK-clocked node here. Pre-start only.
    void attach_ring(std::size_t sb_index, core::TokenNode::Params mission_node,
                     core::TokenNode::Params test_node, sim::Time delay_to,
                     sim::Time delay_from);

    /// Tester -> mission data channel bundled to ring `ring_index`'s token
    /// (paper §4.2 Interlocked Mode: "data exchange between the tester and
    /// the mission mode logic is deterministic"). The mission SB gains an
    /// input port; the tester enqueues words with `host_send`. Returns a
    /// channel handle. Pre-start only.
    std::size_t attach_data_to(std::size_t ring_index,
                               achan::SelfTimedFifo::Params fifo_params,
                               achan::FourPhaseLink::Params link_params);

    /// Mission -> tester data channel; the mission SB gains an output port,
    /// received words are read with `host_recv`. Pre-start only.
    std::size_t attach_data_from(std::size_t ring_index,
                                 achan::SelfTimedFifo::Params fifo_params,
                                 achan::FourPhaseLink::Params link_params);

    void host_send(std::size_t tx_channel, Word w);
    std::optional<Word> host_recv(std::size_t rx_channel);

    /// Thread every mission kernel, every ring node's config registers, and
    /// every local clock's divider onto the self-timed scan chain.
    void add_default_scan_targets();

    /// Thread only the mission kernels (architectural state) onto the scan
    /// chain — the configuration BIST flows use, so pseudo-random patterns
    /// never land in hold/recycle/divider registers.
    void add_kernel_scan_targets();

    void add_scan_target(ScanTarget* target) { chain_.add_target(target); }

    /// Install the chip's boundary-scan cells; enables the mandatory EXTEST
    /// and SAMPLE/PRELOAD instructions over them. Call once, pre-use.
    void set_boundary_cells(std::vector<BoundaryCell> cells);
    BoundaryScanRegister* boundary() { return boundary_.get(); }

    // --- mode ---
    void set_mode(Mode m) { mode_ = m; }
    Mode mode() const { return mode_; }

    // --- host-side pins ---
    /// Advance simulated time by one TCK period, then attempt a rising edge
    /// with the given TMS/TDI. Returns false if the interlock swallowed the
    /// pulse (a wait state: the tester retries with the same values).
    bool clock(bool tms, bool tdi);
    bool tdo() const { return tap_.tdo(); }

    // --- debug operations (paper §4.2) ---
    /// Park/release all tokens currently routed through the Test SB.
    void hold_all_tokens(bool on);
    /// All mission SB clocks deterministically stopped?
    bool all_mission_clocks_stopped() const;
    /// Pump TCK until all mission clocks stop (returns pulses used, or
    /// ~0ull on timeout). Requires tokens held.
    std::uint64_t wait_for_system_stop(std::uint64_t max_pulses = 100000);
    /// Release each held token for exactly one round trip (one hold phase
    /// in the mission SB), then re-park it: single-step.
    bool single_step(std::uint64_t max_pulses = 100000);

    // --- observation / wiring ---
    TapController& tap() { return tap_; }
    clk::TesterClock& tck() { return tck_; }
    SelfTimedScanChain& scan_chain() { return chain_; }
    std::size_t num_rings() const { return ports_.size(); }
    core::TokenNode& test_node(std::size_t i);
    std::uint64_t wait_states() const { return tck_.swallowed(); }
    std::size_t ir_bits() const { return params_.ir_bits; }
    sys::Soc& soc() { return soc_; }

  private:
    class InterlockPort;
    class TxChannel;
    class RxChannel;

    /// Mission endpoints of each attached ring (parallel to ports_).
    std::vector<std::size_t> ring_sb_;
    std::vector<core::TokenNode*> mission_nodes_;

    sys::Soc& soc_;
    Params params_;
    Mode mode_ = Mode::kInterlocked;
    clk::TesterClock tck_;
    TapController tap_;
    SelfTimedScanChain chain_;
    HookRegister mode_reg_;
    HookRegister token_hold_reg_;
    std::unique_ptr<BoundaryScanRegister> boundary_;
    std::vector<std::unique_ptr<InterlockPort>> ports_;
    std::vector<std::unique_ptr<core::TokenRing>> rings_;
    std::vector<std::unique_ptr<ScanTarget>> owned_targets_;
    std::vector<std::unique_ptr<TxChannel>> tx_channels_;
    std::vector<std::unique_ptr<RxChannel>> rx_channels_;
};

}  // namespace st::tap
