#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "tap/data_registers.hpp"

namespace st::tap {

/// One boundary-scan cell (IEEE 1149.1 BC-1 style): sits between a chip pin
/// and the system logic, can sample the functional value and, in EXTEST,
/// drive the pin from its update latch.
struct BoundaryCell {
    std::string name;
    /// Functional value observed at capture time (pin or core side).
    std::function<bool()> sample_fn;
    /// Drive hook used when EXTEST mode is on (may be empty for input-only
    /// observe cells).
    std::function<void(bool)> drive_fn;
};

/// IEEE 1149.1 boundary-scan register: a chain of cells around the chip's
/// pins. SAMPLE/PRELOAD captures functional values without disturbing the
/// system; EXTEST puts the update latches in control of the pins. In the
/// paper's architecture the boundary chain is one of the self-timed scan
/// chains whose head and tail are synchronized to TCK (§4.2).
class BoundaryScanRegister final : public DataRegister {
  public:
    explicit BoundaryScanRegister(std::vector<BoundaryCell> cells)
        : cells_(std::move(cells)), shift_(cells_.size(), false),
          hold_(cells_.size(), false) {}

    /// EXTEST mode: update latches drive the pins.
    void set_extest(bool on);
    bool extest() const { return extest_; }

    // --- DataRegister ---
    void capture() override;
    bool shift(bool tdi) override;
    void update() override;
    std::size_t length() const override { return cells_.size(); }

    /// Last updated (held) image, LSB = cell 0.
    const std::vector<bool>& held() const { return hold_; }
    const std::vector<BoundaryCell>& cells() const { return cells_; }

  private:
    void drive_pins();

    std::vector<BoundaryCell> cells_;
    std::vector<bool> shift_;
    std::vector<bool> hold_;
    bool extest_ = false;
};

}  // namespace st::tap
