#pragma once

#include <cstdint>
#include <vector>

#include "tap/test_sb.hpp"

namespace st::tap {

/// Host-side tester model: drives the Test SB's TMS/TDI pins through the
/// standard IEEE 1149.1 access sequences and packs/unpacks register values.
/// In Interlocked mode a swallowed pulse is a wait state — the driver simply
/// retries the same TMS/TDI, exactly like adaptive-clocking JTAG probes.
class TesterDriver {
  public:
    explicit TesterDriver(TestSb& sb) : sb_(sb) {}

    TesterDriver(const TesterDriver&) = delete;
    TesterDriver& operator=(const TesterDriver&) = delete;

    /// One effective TCK edge (retries through wait states). Returns TDO
    /// as observed after the edge.
    bool clock(bool tms, bool tdi);

    /// Five TMS=1 edges: synchronous test-logic reset.
    void reset();

    /// Load an instruction; returns the bits captured out of the IR
    /// (standard ...01 pattern, usable as a sanity check).
    std::uint64_t shift_ir(std::uint64_t opcode);

    /// Shift `n` bits through the current data register; `in` supplies the
    /// bits (LSB first). Returns the captured bits that fell out.
    std::vector<bool> shift_dr(const std::vector<bool>& in);

    /// Convenience: shift a <=64-bit value through an n-bit DR.
    std::uint64_t shift_dr_word(std::uint64_t value, std::size_t bits);

    /// Read the 32-bit IDCODE.
    std::uint32_t read_idcode();

    /// Full scan-chain transaction: shift `write_image` in (and the captured
    /// state out) through the Test SB's self-timed scan chain, honouring the
    /// empty tail padding. Pass an empty image for a pure read.
    std::vector<bool> scan_transaction(const std::vector<bool>& write_image);

    std::uint64_t pulses_used() const { return pulses_; }

  private:
    TestSb& sb_;
    std::uint64_t pulses_ = 0;
};

}  // namespace st::tap
