#include "tap/tap_controller.hpp"

#include <stdexcept>

namespace st::tap {

const char* to_string(TapState s) {
    switch (s) {
        case TapState::kTestLogicReset: return "Test-Logic-Reset";
        case TapState::kRunTestIdle: return "Run-Test/Idle";
        case TapState::kSelectDrScan: return "Select-DR-Scan";
        case TapState::kCaptureDr: return "Capture-DR";
        case TapState::kShiftDr: return "Shift-DR";
        case TapState::kExit1Dr: return "Exit1-DR";
        case TapState::kPauseDr: return "Pause-DR";
        case TapState::kExit2Dr: return "Exit2-DR";
        case TapState::kUpdateDr: return "Update-DR";
        case TapState::kSelectIrScan: return "Select-IR-Scan";
        case TapState::kCaptureIr: return "Capture-IR";
        case TapState::kShiftIr: return "Shift-IR";
        case TapState::kExit1Ir: return "Exit1-IR";
        case TapState::kPauseIr: return "Pause-IR";
        case TapState::kExit2Ir: return "Exit2-IR";
        case TapState::kUpdateIr: return "Update-IR";
    }
    return "?";
}

TapState tap_next_state(TapState s, bool tms) {
    using S = TapState;
    switch (s) {
        case S::kTestLogicReset: return tms ? S::kTestLogicReset : S::kRunTestIdle;
        case S::kRunTestIdle: return tms ? S::kSelectDrScan : S::kRunTestIdle;
        case S::kSelectDrScan: return tms ? S::kSelectIrScan : S::kCaptureDr;
        case S::kCaptureDr: return tms ? S::kExit1Dr : S::kShiftDr;
        case S::kShiftDr: return tms ? S::kExit1Dr : S::kShiftDr;
        case S::kExit1Dr: return tms ? S::kUpdateDr : S::kPauseDr;
        case S::kPauseDr: return tms ? S::kExit2Dr : S::kPauseDr;
        case S::kExit2Dr: return tms ? S::kUpdateDr : S::kShiftDr;
        case S::kUpdateDr: return tms ? S::kSelectDrScan : S::kRunTestIdle;
        case S::kSelectIrScan: return tms ? S::kTestLogicReset : S::kCaptureIr;
        case S::kCaptureIr: return tms ? S::kExit1Ir : S::kShiftIr;
        case S::kShiftIr: return tms ? S::kExit1Ir : S::kShiftIr;
        case S::kExit1Ir: return tms ? S::kUpdateIr : S::kPauseIr;
        case S::kPauseIr: return tms ? S::kExit2Ir : S::kPauseIr;
        case S::kExit2Ir: return tms ? S::kUpdateIr : S::kShiftIr;
        case S::kUpdateIr: return tms ? S::kSelectDrScan : S::kRunTestIdle;
    }
    return S::kTestLogicReset;
}

TapController::TapController(std::string name, std::size_t ir_bits,
                             std::uint32_t idcode)
    : name_(std::move(name)), ir_bits_(ir_bits), idcode_(idcode) {
    if (ir_bits_ < 2 || ir_bits_ > 64) {
        throw std::invalid_argument("TapController: IR must be 2..64 bits");
    }
    // Standard instructions. BYPASS is all-ones; IDCODE here is opcode 1.
    const std::uint64_t all_ones =
        ir_bits_ == 64 ? ~0ull : ((1ull << ir_bits_) - 1);
    add_instruction(all_ones, &bypass_, "BYPASS");
    idcode_opcode_ = 1;
    add_instruction(idcode_opcode_, &idcode_, "IDCODE");
    reset_state();
}

void TapController::add_instruction(std::uint64_t opcode, DataRegister* reg,
                                    std::string mnemonic) {
    if (reg == nullptr) {
        throw std::invalid_argument("TapController: null register");
    }
    instructions_[opcode] = Entry{reg, std::move(mnemonic)};
}

void TapController::reset_state() {
    state_ = TapState::kTestLogicReset;
    // Test-Logic-Reset selects IDCODE (or BYPASS without one); we have one.
    current_ir_ = idcode_opcode_;
}

DataRegister* TapController::current_dr() {
    const auto it = instructions_.find(current_ir_);
    return it == instructions_.end() ? &bypass_ : it->second.reg;
}

std::string TapController::current_mnemonic() const {
    const auto it = instructions_.find(current_ir_);
    return it == instructions_.end() ? "BYPASS(unmapped)" : it->second.mnemonic;
}

void TapController::sample(std::uint64_t) {
    // All action happens on the committed edge; TDO for the *current* shift
    // is produced in commit (our tester reads TDO after the pulse, which
    // folds 1149.1's falling-edge TDO timing into one call).
}

void TapController::commit(std::uint64_t) {
    // Rising-edge actions of the *current* state (IEEE 1149.1: capture and
    // shift happen on TCK rising edges while the controller sits in the
    // Capture/Shift states — including the edge that exits them).
    const TapState cur = state_;
    switch (cur) {
        case TapState::kCaptureDr:
            current_dr()->capture();
            break;
        case TapState::kShiftDr:
            tdo_ = current_dr()->shift(tdi_);
            break;
        case TapState::kCaptureIr:
            // Standard: capture the fixed pattern ...01 for fault detection.
            ir_shift_ = 0b01;
            break;
        case TapState::kShiftIr:
            tdo_ = ir_shift_ & 1;
            ir_shift_ >>= 1;
            if (tdi_) ir_shift_ |= (1ull << (ir_bits_ - 1));
            break;
        default:
            break;
    }

    // State transition, plus entry actions (update registers latch when the
    // Update state is entered — folding 1149.1's falling-edge update into
    // the same pulse).
    state_ = tap_next_state(cur, tms_);
    switch (state_) {
        case TapState::kTestLogicReset:
            if (cur != TapState::kTestLogicReset) reset_state();
            break;
        case TapState::kUpdateDr:
            current_dr()->update();
            break;
        case TapState::kUpdateIr:
            current_ir_ = ir_shift_;
            if (instruction_hook_) instruction_hook_(current_ir_);
            break;
        default:
            break;
    }
}

}  // namespace st::tap
