#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace st::tap {

/// A test data register selectable between TDI and TDO (IEEE 1149.1 §9).
/// The TAP controller drives capture/shift/update from its Capture-DR /
/// Shift-DR / Update-DR states.
class DataRegister {
  public:
    virtual ~DataRegister() = default;

    /// Parallel-load the shift stage (Capture-DR).
    virtual void capture() = 0;

    /// One shift toward TDO; `tdi` enters the far end. Returns the bit that
    /// falls out (Shift-DR).
    virtual bool shift(bool tdi) = 0;

    /// Transfer the shift stage to the parallel hold stage (Update-DR).
    virtual void update() = 0;

    /// Number of shift stages between TDI and TDO.
    virtual std::size_t length() const = 0;
};

/// Single-bit BYPASS register (captures 0, no update action).
class BypassRegister final : public DataRegister {
  public:
    void capture() override { bit_ = false; }
    bool shift(bool tdi) override {
        const bool out = bit_;
        bit_ = tdi;
        return out;
    }
    void update() override {}
    std::size_t length() const override { return 1; }

  private:
    bool bit_ = false;
};

/// 32-bit IDCODE register.
class IdcodeRegister final : public DataRegister {
  public:
    explicit IdcodeRegister(std::uint32_t idcode) : idcode_(idcode) {}
    void capture() override { shift_ = idcode_; }
    bool shift(bool tdi) override {
        const bool out = shift_ & 1;
        shift_ = (shift_ >> 1) | (static_cast<std::uint32_t>(tdi) << 31);
        return out;
    }
    void update() override {}
    std::size_t length() const override { return 32; }

  private:
    std::uint32_t idcode_;
    std::uint32_t shift_ = 0;
};

/// General-purpose register with capture/update hooks; used for mode bits,
/// token-hold masks, clock-divider settings, and P1500 WIRs.
class HookRegister final : public DataRegister {
  public:
    using CaptureFn = std::function<std::uint64_t()>;
    using UpdateFn = std::function<void(std::uint64_t)>;

    HookRegister(std::size_t bits, CaptureFn capture_fn, UpdateFn update_fn);

    void capture() override;
    bool shift(bool tdi) override;
    void update() override;
    std::size_t length() const override { return bits_; }

    /// Last value handed to the update hook.
    std::uint64_t held() const { return held_; }

  private:
    std::size_t bits_;
    CaptureFn capture_fn_;
    UpdateFn update_fn_;
    std::uint64_t shift_ = 0;
    std::uint64_t held_ = 0;
};

}  // namespace st::tap
