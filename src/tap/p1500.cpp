#include "tap/p1500.hpp"

namespace st::tap {

CoreWrapper::CoreWrapper(std::string name, sb::Kernel& kernel,
                         std::size_t boundary_bits)
    : name_(std::move(name)),
      boundary_bits_(boundary_bits),
      wir_(
          2, [this] { return static_cast<std::uint64_t>(op_); },
          [this](std::uint64_t v) {
              op_ = static_cast<WirOp>(v & 0x3);
              if (op_ != WirOp::kBypass && op_ != WirOp::kCoreScan &&
                  op_ != WirOp::kBoundary) {
                  op_ = WirOp::kBypass;
              }
          }),
      boundary_(
          boundary_bits == 0 ? 1 : boundary_bits,
          [this] { return boundary_capture_ ? boundary_capture_() : 0; },
          [this](std::uint64_t v) {
              if (boundary_update_) boundary_update_(v);
          }),
      core_target_(name_ + ".core", kernel),
      core_chain_(name_ + ".core_chain", /*empty_tail_stages=*/2),
      wdr_(*this) {
    core_chain_.add_target(&core_target_);
}

DataRegister& CoreWrapper::active() {
    switch (op_) {
        case WirOp::kCoreScan:
            return core_chain_;
        case WirOp::kBoundary:
            return boundary_;
        case WirOp::kBypass:
        default:
            return wby_;
    }
}

}  // namespace st::tap
