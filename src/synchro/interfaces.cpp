#include "synchro/interfaces.hpp"

#include <stdexcept>

namespace st::core {

InputInterface::InputInterface(sim::Scheduler& sched, std::string name,
                               TokenNode& node, achan::SelfTimedFifo& fifo)
    : sched_(sched), name_(std::move(name)), node_(node), fifo_(fifo) {
    fifo_.head_link().bind_sink(this);
}

void InputInterface::accept(Word w) {
    if (latch_valid_) {
        throw std::logic_error("InputInterface[" + name_ + "]: latch overrun");
    }
    latch_ = w;
    latch_valid_ = true;
    latch_time_ = sched_.now();
}

void InputInterface::sample(std::uint64_t cycle) {
    // Snapshot the latch for this cycle: a word arriving asynchronously
    // later in the same cycle is only visible from the next edge on.
    cycle_ = cycle;
    cycle_valid_ = latch_valid_ && node_.sb_en();
    cycle_word_ = latch_;
    taken_ = false;
}

Word InputInterface::take() {
    if (!cycle_valid_) {
        throw std::logic_error("InputInterface[" + name_ + "]: take without data");
    }
    cycle_valid_ = false;
    taken_ = true;
    ++delivered_;
    if (deliver_probe_) deliver_probe_(cycle_, cycle_word_);
    return cycle_word_;
}

void InputInterface::commit(std::uint64_t) {
    if (taken_) {
        latch_valid_ = false;
        taken_ = false;
    }
    // Enablement may have turned on this edge, or the latch may have freed:
    // let a pending head handshake complete during the coming cycle.
    fifo_.head_link().poke();
}

OutputInterface::OutputInterface(sim::Scheduler& sched, std::string name,
                                 TokenNode& node, achan::SelfTimedFifo& fifo,
                                 achan::FourPhaseLink::Params link_params)
    : name_(std::move(name)),
      node_(node),
      fifo_(fifo),
      gated_tail_([&node] { return node.sb_en(); }, fifo.tail_sink()),
      link_(achan::make_link(sched, name_ + ".link", link_params)) {
    link_->bind_sink(&gated_tail_);
    fifo_.attach_tail_link(link_.get());
}

void OutputInterface::push(Word w) {
    if (!can_push()) {
        throw std::logic_error("OutputInterface[" + name_ + "]: push while full");
    }
    staged_word_ = w;
    staged_ = true;
    if (send_probe_) send_probe_(cycle_, w);
}

void OutputInterface::commit(std::uint64_t) {
    if (staged_) {
        link_->send(staged_word_);
        staged_ = false;
        ++sent_;
    } else if (node_.sb_en()) {
        // Re-enabled with a transfer still pending from the previous hold
        // phase: let it land now that the gate is open again.
        link_->poke();
    }
}

}  // namespace st::core
