#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "sb/kernel.hpp"
#include "snap/state_io.hpp"

namespace st::core {

/// SB-side transmit adapter for a widened channel (paper §5): "the
/// synchro-tokens system can match the throughput of STARI by increasing
/// the channel width by a factor of at least (H+R)/H and providing hardware
/// within the SB to synchronously queue data produced while the interface
/// is disabled."
///
/// The adapter is that queueing hardware: a synchronous FIFO feeding `k`
/// parallel lanes (each lane a full channel: FIFO + interfaces on the same
/// token ring node). Word i goes to lane i % k, strictly — head-of-line
/// blocking on a full lane preserves the reassembly order.
class LaneSplitter {
  public:
    /// `lanes` = output-port indices on the SB, in lane order.
    explicit LaneSplitter(std::vector<std::size_t> lanes);

    /// Queue a word for transmission (call any cycle; the queue is the
    /// paper's "hardware within the SB").
    void offer(Word w) { queue_.push_back(w); }

    /// Drain the queue into the lanes; call once per cycle from the kernel.
    void pump(sb::SbContext& ctx);

    std::size_t queue_depth() const { return queue_.size(); }
    std::size_t max_queue_depth() const { return max_depth_; }
    std::uint64_t words_sent() const { return sent_; }
    std::size_t lane_count() const { return lanes_.size(); }

    void save_state(snap::StateWriter& w) const {
        w.begin("splitter");
        w.u64(next_lane_);
        w.u64(max_depth_);
        w.u64(sent_);
        w.u64(queue_.size());
        for (const auto v : queue_) w.u64(v);
        w.end();
    }
    void restore_state(snap::StateReader& r) {
        r.enter("splitter");
        next_lane_ = static_cast<std::size_t>(r.u64());
        max_depth_ = static_cast<std::size_t>(r.u64());
        sent_ = r.u64();
        const std::uint64_t n = r.u64();
        queue_.clear();
        for (std::uint64_t i = 0; i < n; ++i) queue_.push_back(r.u64());
        r.leave();
    }

  private:
    std::vector<std::size_t> lanes_;
    std::deque<Word> queue_;
    std::size_t next_lane_ = 0;
    std::size_t max_depth_ = 0;
    std::uint64_t sent_ = 0;
};

/// SB-side receive adapter: reassembles the round-robin lane streams into
/// the original word order.
class LaneMerger {
  public:
    /// `lanes` = input-port indices on the SB, in lane order (must match
    /// the splitter's).
    explicit LaneMerger(std::vector<std::size_t> lanes);

    /// Collect arrived words in order; call once per cycle.
    void pump(sb::SbContext& ctx);

    bool has_word() const { return !queue_.empty(); }
    Word pop();
    std::uint64_t words_received() const { return received_; }
    std::size_t queue_depth() const { return queue_.size(); }
    std::size_t lane_count() const { return lanes_.size(); }

    void save_state(snap::StateWriter& w) const {
        w.begin("merger");
        w.u64(next_lane_);
        w.u64(received_);
        w.u64(queue_.size());
        for (const auto v : queue_) w.u64(v);
        w.end();
    }
    void restore_state(snap::StateReader& r) {
        r.enter("merger");
        next_lane_ = static_cast<std::size_t>(r.u64());
        received_ = r.u64();
        const std::uint64_t n = r.u64();
        queue_.clear();
        for (std::uint64_t i = 0; i < n; ++i) queue_.push_back(r.u64());
        r.leave();
    }

  private:
    std::vector<std::size_t> lanes_;
    std::deque<Word> queue_;
    std::size_t next_lane_ = 0;
    std::uint64_t received_ = 0;
};

}  // namespace st::core
