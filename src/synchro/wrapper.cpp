#include "synchro/wrapper.hpp"

#include <stdexcept>

namespace st::core {

SbWrapper::SbWrapper(sim::Scheduler& sched, std::string name,
                     clk::StoppableClock::Params clock_params,
                     std::unique_ptr<sb::Kernel> kernel)
    : sched_(sched),
      name_(std::move(name)),
      clock_(sched, name_ + ".clk", clock_params),
      block_(name_ + ".sb", std::move(kernel)) {}

TokenNode& SbWrapper::add_node(TokenNode::Params p) {
    if (finalized_) {
        throw std::logic_error("SbWrapper[" + name_ + "]: add_node after finalize");
    }
    auto node = std::make_unique<TokenNode>(
        name_ + ".node" + std::to_string(nodes_.size()), p);
    node->set_wrapper(this);
    nodes_.push_back(std::move(node));
    return *nodes_.back();
}

InputInterface& SbWrapper::attach_input(TokenNode& node,
                                        achan::SelfTimedFifo& fifo) {
    if (finalized_) {
        throw std::logic_error("SbWrapper[" + name_ + "]: attach after finalize");
    }
    auto iface = std::make_unique<InputInterface>(
        sched_, name_ + ".in" + std::to_string(inputs_.size()), node, fifo);
    block_.add_in_port(iface.get());
    inputs_.push_back(std::move(iface));
    return *inputs_.back();
}

OutputInterface& SbWrapper::attach_output(
    TokenNode& node, achan::SelfTimedFifo& fifo,
    achan::FourPhaseLink::Params link_params) {
    if (finalized_) {
        throw std::logic_error("SbWrapper[" + name_ + "]: attach after finalize");
    }
    auto iface = std::make_unique<OutputInterface>(
        sched_, name_ + ".out" + std::to_string(outputs_.size()), node, fifo,
        link_params);
    block_.add_out_port(iface.get());
    outputs_.push_back(std::move(iface));
    return *outputs_.back();
}

void SbWrapper::finalize() {
    if (finalized_) {
        throw std::logic_error("SbWrapper[" + name_ + "]: double finalize");
    }
    // Canonical sink order: nodes first (they produce the registered sb_en
    // the interfaces read post-commit), then interfaces, then the SB.
    for (auto& n : nodes_) clock_.add_sink(n.get());
    for (auto& i : inputs_) clock_.add_sink(i.get());
    for (auto& o : outputs_) clock_.add_sink(o.get());
    clock_.add_sink(&block_);
    clock_.set_enable_fn([this] { return all_clken(); });
    finalized_ = true;
}

void SbWrapper::start() {
    if (!finalized_) {
        throw std::logic_error("SbWrapper[" + name_ + "]: start before finalize");
    }
    clock_.start();
}

bool SbWrapper::all_clken() const {
    for (const auto& n : nodes_) {
        if (!n->clken()) return false;
    }
    return true;
}

void SbWrapper::maybe_restart() {
    if (all_clken()) clock_.async_restart();
}

void SbWrapper::on_sb_en_rise(const TokenNode& node) {
    for (auto& i : inputs_) {
        if (&i->node() == &node) i->poke();
    }
    for (auto& o : outputs_) {
        if (&o->node() == &node) o->poke();
    }
}

}  // namespace st::core
