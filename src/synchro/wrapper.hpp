#pragma once

#include <memory>
#include <string>
#include <vector>

#include "async/self_timed_fifo.hpp"
#include "clock/stoppable_clock.hpp"
#include "sb/kernel.hpp"
#include "sb/sync_block.hpp"
#include "sim/scheduler.hpp"
#include "synchro/interfaces.hpp"
#include "synchro/token_node.hpp"

namespace st::core {

/// Synchro-tokens wrapper around one synchronous block (paper Fig. 1B).
///
/// Owns the SB's stoppable clock, any number of token-ring nodes, and the
/// FIFO interfaces associated with those nodes. The wrapper ANDs the nodes'
/// clken outputs into the clock's enable ("the enables from all nodes in the
/// SB are ANDed together so that the clock stops when any node de-asserts
/// its clken") and restarts the clock asynchronously once every node's clken
/// is asserted again.
class SbWrapper {
  public:
    SbWrapper(sim::Scheduler& sched, std::string name,
              clk::StoppableClock::Params clock_params,
              std::unique_ptr<sb::Kernel> kernel);

    SbWrapper(const SbWrapper&) = delete;
    SbWrapper& operator=(const SbWrapper&) = delete;

    /// Create a token-ring node inside this wrapper.
    TokenNode& add_node(TokenNode::Params p);

    /// Attach the receiving end of a channel: the FIFO's head feeds a new
    /// input interface gated by `node`; the SB gains an input port.
    InputInterface& attach_input(TokenNode& node, achan::SelfTimedFifo& fifo);

    /// Attach the transmitting end of a channel: a new output interface
    /// gated by `node` drives the FIFO's tail; the SB gains an output port.
    OutputInterface& attach_output(TokenNode& node, achan::SelfTimedFifo& fifo,
                                   achan::FourPhaseLink::Params link_params);

    /// Register all clocked sinks on the local clock in canonical order
    /// (nodes, interfaces, SB) and install the clken AND tree. Must be
    /// called exactly once, after all nodes/interfaces are attached.
    void finalize();

    /// Schedule the first clock edge. Requires finalize().
    void start();

    /// Restart the stopped clock if every node's clken is asserted — invoked
    /// by nodes on asynchronous (late) token arrival.
    void maybe_restart();

    /// Re-evaluate pending handshakes on every interface gated by `node` —
    /// invoked by the node whenever its sb_en rises (the gate is
    /// combinational in hardware, so pending requests complete immediately).
    void on_sb_en_rise(const TokenNode& node);

    bool all_clken() const;

    sb::SyncBlock& block() { return block_; }
    const sb::SyncBlock& block() const { return block_; }
    clk::StoppableClock& clock() { return clock_; }
    const clk::StoppableClock& clock() const { return clock_; }
    const std::string& name() const { return name_; }

    std::size_t num_nodes() const { return nodes_.size(); }
    TokenNode& node(std::size_t i) { return *nodes_.at(i); }
    std::size_t num_inputs() const { return inputs_.size(); }
    InputInterface& input(std::size_t i) { return *inputs_.at(i); }
    std::size_t num_outputs() const { return outputs_.size(); }
    OutputInterface& output(std::size_t i) { return *outputs_.at(i); }

  private:
    sim::Scheduler& sched_;
    std::string name_;
    clk::StoppableClock clock_;
    sb::SyncBlock block_;
    std::vector<std::unique_ptr<TokenNode>> nodes_;
    std::vector<std::unique_ptr<InputInterface>> inputs_;
    std::vector<std::unique_ptr<OutputInterface>> outputs_;
    bool finalized_ = false;
};

}  // namespace st::core
