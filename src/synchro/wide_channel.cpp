#include "synchro/wide_channel.hpp"

#include <stdexcept>

namespace st::core {

LaneSplitter::LaneSplitter(std::vector<std::size_t> lanes)
    : lanes_(std::move(lanes)) {
    if (lanes_.empty()) {
        throw std::invalid_argument("LaneSplitter: need at least one lane");
    }
}

void LaneSplitter::pump(sb::SbContext& ctx) {
    if (queue_.size() > max_depth_) max_depth_ = queue_.size();
    // Up to one word per lane per cycle, in strict round-robin order; stop
    // at the first lane that cannot accept so word i always rides lane i%k.
    for (std::size_t n = 0; n < lanes_.size() && !queue_.empty(); ++n) {
        auto& port = ctx.out(lanes_[next_lane_]);
        if (!port.can_push()) break;
        port.push(queue_.front());
        queue_.pop_front();
        ++sent_;
        next_lane_ = (next_lane_ + 1) % lanes_.size();
    }
}

LaneMerger::LaneMerger(std::vector<std::size_t> lanes)
    : lanes_(std::move(lanes)) {
    if (lanes_.empty()) {
        throw std::invalid_argument("LaneMerger: need at least one lane");
    }
}

void LaneMerger::pump(sb::SbContext& ctx) {
    // Strict round-robin: only take from the lane carrying the next word in
    // sequence; stop when it has nothing (cross-lane order preserved).
    for (std::size_t n = 0; n < lanes_.size(); ++n) {
        auto& port = ctx.in(lanes_[next_lane_]);
        if (!port.has_data()) break;
        queue_.push_back(port.take());
        ++received_;
        next_lane_ = (next_lane_ + 1) % lanes_.size();
    }
}

Word LaneMerger::pop() {
    if (queue_.empty()) {
        throw std::logic_error("LaneMerger: pop from empty reassembly queue");
    }
    const Word w = queue_.front();
    queue_.pop_front();
    return w;
}

}  // namespace st::core
