#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "async/four_phase.hpp"
#include "async/make_link.hpp"
#include "async/self_timed_fifo.hpp"
#include "clock/clock_sink.hpp"
#include "sb/ports.hpp"
#include "synchro/token_node.hpp"

namespace st::core {

/// LinkSink adapter that gates acceptance on a predicate — used to make FIFO
/// access mutually exclusive between the two SBs on a channel (paper §3:
/// "make access to the FIFO mutually exclusive ... using the master handshake
/// signal to decide which SB is enabled").
class GatedLinkSink final : public achan::LinkSink {
  public:
    GatedLinkSink(std::function<bool()> gate, achan::LinkSink& inner)
        : gate_(std::move(gate)), inner_(inner) {}

    bool can_accept() const override { return gate_() && inner_.can_accept(); }
    void accept(Word w) override { inner_.accept(w); }

  private:
    std::function<bool()> gate_;
    achan::LinkSink& inner_;
};

/// Input interface: sync/async boundary on the receiving side of a channel
/// (paper Fig. 1B). The FIFO's head link deposits a word into a one-deep
/// latch, but only while the node holds the token (`sb_en`); the SB sees the
/// latched word through the InPortIf view with Valid/Empty semantics.
///
/// The four-phase handshake that refills the latch completes within one local
/// clock cycle (audited by verify::TimingChecker), so "FIFO non-empty" maps
/// to "word available" at a deterministic local cycle.
class InputInterface final : public clk::ClockSink,
                             public achan::LinkSink,
                             public sb::InPortIf,
                             public snap::Snapshottable {
  public:
    InputInterface(sim::Scheduler& sched, std::string name, TokenNode& node,
                   achan::SelfTimedFifo& fifo);

    InputInterface(const InputInterface&) = delete;
    InputInterface& operator=(const InputInterface&) = delete;

    // --- LinkSink (async side, bound to fifo.head_link()) ---
    bool can_accept() const override { return node_.sb_en() && !latch_valid_; }
    void accept(Word w) override;

    // --- InPortIf (SB side) ---
    bool has_data() const override { return cycle_valid_; }
    Word peek() const override { return cycle_word_; }
    Word take() override;

    // --- ClockSink ---
    void sample(std::uint64_t cycle) override;
    void commit(std::uint64_t cycle) override;

    // --- observation ---
    std::uint64_t words_delivered() const { return delivered_; }
    sim::Time last_latch_time() const { return latch_time_; }
    const std::string& name() const { return name_; }
    const TokenNode& node() const { return node_; }
    achan::SelfTimedFifo& fifo() const { return fifo_; }

    /// Probe invoked whenever the SB consumes a word: (local cycle, word).
    void on_deliver(std::function<void(std::uint64_t, Word)> fn) {
        deliver_probe_ = std::move(fn);
    }

    /// Re-evaluate a pending head handshake (enable gate opened).
    void poke() { fifo_.head_link().poke(); }

    /// Snapshot: latch + per-cycle registers (no scheduler events of its
    /// own — the refill handshake lives in the FIFO's head link).
    void save_state(snap::StateWriter& w) const override {
        w.begin("in_if");
        w.u64(latch_);
        w.b(latch_valid_);
        w.u64(latch_time_);
        w.u64(cycle_word_);
        w.b(cycle_valid_);
        w.b(taken_);
        w.u64(cycle_);
        w.u64(delivered_);
        w.end();
    }
    void restore_state(snap::StateReader& r) override {
        r.enter("in_if");
        latch_ = r.u64();
        latch_valid_ = r.b();
        latch_time_ = r.u64();
        cycle_word_ = r.u64();
        cycle_valid_ = r.b();
        taken_ = r.b();
        cycle_ = r.u64();
        delivered_ = r.u64();
        r.leave();
    }

  private:
    sim::Scheduler& sched_;
    std::string name_;
    TokenNode& node_;
    achan::SelfTimedFifo& fifo_;

    Word latch_ = 0;
    bool latch_valid_ = false;
    sim::Time latch_time_ = 0;

    // per-cycle snapshot (stable during the sample phase)
    Word cycle_word_ = 0;
    bool cycle_valid_ = false;
    bool taken_ = false;
    std::uint64_t cycle_ = 0;

    std::uint64_t delivered_ = 0;
    std::function<void(std::uint64_t, Word)> deliver_probe_;
};

/// Output interface: sync/async boundary on the transmitting side. The SB
/// pushes a word during sample; the interface launches the four-phase
/// handshake into the FIFO tail at commit. `can_push()` is the inverse of
/// the paper's Full: false while disabled or while the FIFO back-pressures.
class OutputInterface final : public clk::ClockSink,
                              public sb::OutPortIf,
                              public snap::Snapshottable {
  public:
    OutputInterface(sim::Scheduler& sched, std::string name, TokenNode& node,
                    achan::SelfTimedFifo& fifo,
                    achan::FourPhaseLink::Params link_params);

    OutputInterface(const OutputInterface&) = delete;
    OutputInterface& operator=(const OutputInterface&) = delete;

    // --- OutPortIf (SB side) ---
    bool can_push() const override {
        return node_.sb_en() && link_->idle() && !staged_;
    }
    void push(Word w) override;

    // --- ClockSink ---
    void sample(std::uint64_t cycle) override { cycle_ = cycle; }
    void commit(std::uint64_t cycle) override;

    // --- observation ---
    std::uint64_t words_sent() const { return sent_; }
    const achan::Link& link() const { return *link_; }
    const std::string& name() const { return name_; }
    const TokenNode& node() const { return node_; }
    achan::SelfTimedFifo& fifo() const { return fifo_; }

    /// Probe invoked whenever the SB pushes a word: (local cycle, word).
    void on_send(std::function<void(std::uint64_t, Word)> fn) {
        send_probe_ = std::move(fn);
    }

    /// Re-evaluate a pending tail handshake (enable gate opened).
    void poke() { link_->poke(); }

    /// Snapshot: staged word plus the owned tail link's handshake state.
    void save_state(snap::StateWriter& w) const override {
        w.begin_group("out_if");
        w.begin("regs");
        w.u64(staged_word_);
        w.b(staged_);
        w.u64(cycle_);
        w.u64(sent_);
        w.end();
        link_->save_state(w);
        w.end();
    }
    void restore_state(snap::StateReader& r) override {
        r.enter("out_if");
        r.enter("regs");
        staged_word_ = r.u64();
        staged_ = r.b();
        cycle_ = r.u64();
        sent_ = r.u64();
        r.leave();
        link_->restore_state(r);
        r.leave();
    }

  private:
    std::string name_;
    TokenNode& node_;
    achan::SelfTimedFifo& fifo_;
    GatedLinkSink gated_tail_;
    std::unique_ptr<achan::Link> link_;

    Word staged_word_ = 0;
    bool staged_ = false;
    std::uint64_t cycle_ = 0;
    std::uint64_t sent_ = 0;
    std::function<void(std::uint64_t, Word)> send_probe_;
};

}  // namespace st::core
