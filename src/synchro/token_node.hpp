#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "clock/clock_sink.hpp"
#include "snap/snapshot.hpp"
#include "synchro/token_endpoint.hpp"

namespace st::core {

class SbWrapper;

/// Token-ring node: the master-handshake state machine of a synchro-tokens
/// wrapper (paper §4.1, Figure 2).
///
/// The node is synchronous logic clocked by its SB's stoppable clock. It owns
/// two decrementing counters loaded from tester-accessible registers:
///
///  * **hold counter** — local cycles the node keeps the token; while holding,
///    `sb_en` enables the node's FIFO interfaces and data exchange may occur.
///    On reaching zero it presets, the token departs (event F), interfaces
///    disable (G).
///  * **recycle counter** — local cycles after passing the token until it is
///    expected back. While recycling `clken` stays asserted but `sb_en` does
///    not (H). If the counter expires with no token, `clken` deasserts (I)
///    and the whole SB clock stops synchronously (J); the returning token
///    restarts it asynchronously (K, L).
///
/// An **early** token is latched but not recognized before the recycle
/// counter reaches zero; a **late** token freezes the local cycle counter.
/// Either way the enable schedule *in local-cycle-index space* is identical,
/// which is the root of the determinism property.
class TokenNode final : public clk::ClockSink,
                        public TokenEndpoint,
                        public snap::Snapshottable {
  public:
    enum class Phase { kHolding, kRecycling };

    struct Params {
        std::uint32_t hold = 4;     ///< H register (>= 1)
        std::uint32_t recycle = 4;  ///< R register
        bool initial_holder = false;
        /// Waiter-side initial recycle count (phase alignment); holders
        /// ignore it. Defaults to `recycle` when left at the sentinel.
        std::uint32_t initial_recycle = kUseRecycle;
        static constexpr std::uint32_t kUseRecycle = ~0u;
    };

    TokenNode(std::string name, Params p);

    TokenNode(const TokenNode&) = delete;
    TokenNode& operator=(const TokenNode&) = delete;

    /// Ring wiring: invoked (during commit) when the token departs.
    void set_pass_fn(std::function<void()> fn) override {
        pass_fn_ = std::move(fn);
    }

    /// Owning wrapper, for asynchronous clock-restart requests.
    void set_wrapper(SbWrapper* w) { wrapper_ = w; }

    /// Asynchronous token arrival (called by the TokenRing delay model).
    void token_arrive() override;

    // --- registered outputs, stable across each cycle ---
    bool sb_en() const { return sb_en_; }
    bool clken() const { return clken_; }

    // --- ClockSink ---
    void sample(std::uint64_t cycle) override;
    void commit(std::uint64_t cycle) override;

    // --- tester-accessible registers (paper: ROM / fuses / tester) ---
    void load_hold_register(std::uint32_t h);
    void load_recycle_register(std::uint32_t r) { recycle_reg_ = r; }
    std::uint32_t hold_register() const { return hold_reg_; }
    std::uint32_t recycle_register() const { return recycle_reg_; }

    /// Debug: freeze the hold counter so the node keeps the token
    /// indefinitely (breakpoint support, paper §4.2).
    void set_debug_hold(bool on) { debug_hold_ = on; }
    bool debug_hold() const { return debug_hold_; }

    /// Opt-in fault hook (fuzz harness): consulted at each token departure
    /// for the number of copies that actually leave onto the ring wire —
    /// 0 drops the token at the source, 1 is nominal, 2 duplicates it.
    void set_pass_fault(std::function<unsigned()> fn) {
        pass_fault_ = std::move(fn);
    }

    /// Opt-in observer (invariant monitor): invoked synchronously after
    /// every phase transition with the new phase, letting the monitor keep
    /// per-ring holding counts incrementally instead of polling every node
    /// of every ring at every check. One slot; the monitor owns it.
    /// NOT fired by restore_state — a restorer re-derives its counts after
    /// the restore completes (InvariantMonitor::reset).
    void set_phase_observer(std::function<void(Phase)> fn) {
        phase_obs_ = std::move(fn);
    }

    // --- observation ---
    Phase phase() const { return phase_; }
    bool token_here() const { return token_here_; }
    bool waiting() const { return waiting_; }
    std::uint32_t hold_count() const { return hold_ctr_; }
    std::uint32_t recycle_count() const { return recycle_ctr_; }
    std::uint64_t tokens_passed() const { return tokens_passed_; }
    std::uint64_t tokens_received() const { return tokens_received_; }
    std::uint64_t late_arrivals() const { return late_arrivals_; }
    std::uint64_t protocol_errors() const { return protocol_errors_; }
    const std::string& name() const { return name_; }

    /// Snapshot: the node is pure synchronous register state — counters,
    /// phase, flags — with no scheduler events of its own (wires in flight
    /// belong to the TokenRing).
    void save_state(snap::StateWriter& w) const override;
    void restore_state(snap::StateReader& r) override;

  private:
    void enter_holding();
    void pass_token();

    std::string name_;
    std::function<void()> pass_fn_;
    std::function<unsigned()> pass_fault_;
    std::function<void(Phase)> phase_obs_;
    SbWrapper* wrapper_ = nullptr;

    std::uint32_t hold_reg_;
    std::uint32_t recycle_reg_;
    std::uint32_t hold_ctr_ = 0;
    std::uint32_t recycle_ctr_ = 0;

    Phase phase_ = Phase::kRecycling;
    bool token_here_ = false;
    bool waiting_ = false;  ///< recycle expired, token absent, clken low
    bool sb_en_ = false;
    bool clken_ = true;
    bool debug_hold_ = false;

    std::uint64_t tokens_passed_ = 0;
    std::uint64_t tokens_received_ = 0;
    std::uint64_t late_arrivals_ = 0;
    std::uint64_t protocol_errors_ = 0;
};

}  // namespace st::core
