#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/scheduler.hpp"
#include "snap/snapshot.hpp"
#include "synchro/token_endpoint.hpp"

namespace st::core {

/// Token ring connecting the wrapper nodes of communicating SBs.
///
/// The paper instantiates one ring per communicating SB *pair* (two nodes);
/// this model generalizes to N nodes passed round-robin, which is exercised
/// as an extension experiment. Exactly one node must be the initial holder.
/// Each hop is a wire with its own (perturbable) propagation delay.
class TokenRing : public snap::Snapshottable {
  public:
    TokenRing(sim::Scheduler& sched, std::string name)
        : sched_(sched), name_(std::move(name)) {}

    TokenRing(const TokenRing&) = delete;
    TokenRing& operator=(const TokenRing&) = delete;

    /// Append an endpoint; `hop_delay` is the wire delay from this endpoint
    /// to the *next* one in ring order (the last hop returns to the first).
    void add_node(TokenEndpoint* node, sim::Time hop_delay);

    /// Wire the pass functions. Must be called once, after all add_node.
    void finalize();

    /// Perturb a hop delay (index = source node position). Pre-run only.
    void set_hop_delay(std::size_t i, sim::Time d);
    sim::Time hop_delay(std::size_t i) const { return hops_.at(i).delay; }

    std::size_t size() const { return hops_.size(); }
    std::uint64_t passes() const { return passes_; }
    const std::string& name() const { return name_; }
    TokenEndpoint& endpoint(std::size_t i) const { return *hops_.at(i).node; }

    /// Observer: token departed hop `i` at time `t` (waveform probes).
    void on_pass(std::function<void(std::size_t, sim::Time)> fn) {
        pass_observer_ = std::move(fn);
    }
    /// Observer: token delivered to hop `i` at time `t`.
    void on_arrive(std::function<void(std::size_t, sim::Time)> fn) {
        arrive_observer_ = std::move(fn);
    }

    /// Snapshot: pass counter plus every token currently in flight on a
    /// wire (destination hop, arrival slot). Tokens whose arrival event was
    /// dropped by a fault interceptor are pruned — they no longer exist.
    void save_state(snap::StateWriter& w) const override;
    void restore_state(snap::StateReader& r) override;

  private:
    struct Hop {
        TokenEndpoint* node = nullptr;
        sim::Time delay = 0;
    };

    /// One token in flight: scheduled arrival at hops_[next_idx].
    struct Flight {
        std::uint64_t id = 0;
        std::size_t next_idx = 0;
        sim::Time t = 0;
        std::uint64_t seq = 0;
    };

    void launch_flight(std::size_t next_idx, sim::Time delay);
    void arrive(std::uint64_t flight_id);

    sim::Scheduler& sched_;
    std::string name_;
    std::vector<Hop> hops_;
    bool finalized_ = false;
    std::uint64_t passes_ = 0;
    std::vector<Flight> flights_;
    std::uint64_t next_flight_id_ = 0;
    std::function<void(std::size_t, sim::Time)> pass_observer_;
    std::function<void(std::size_t, sim::Time)> arrive_observer_;
};

}  // namespace st::core
