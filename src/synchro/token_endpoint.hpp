#pragma once

#include <functional>

namespace st::core {

/// One station on a token ring. TokenNode is the standard implementation;
/// the Test SB's interlockable port (module `tap`) is another — it forwards
/// tokens combinationally in Independent mode and behaves like a TCK-clocked
/// node in Interlocked mode.
class TokenEndpoint {
  public:
    virtual ~TokenEndpoint() = default;

    /// Asynchronous token arrival from the ring.
    virtual void token_arrive() = 0;

    /// Install the callback the endpoint must invoke to pass the token on.
    virtual void set_pass_fn(std::function<void()> fn) = 0;
};

}  // namespace st::core
