#include "synchro/token_ring.hpp"

#include <stdexcept>

namespace st::core {

void TokenRing::add_node(TokenEndpoint* node, sim::Time hop_delay) {
    if (finalized_) {
        throw std::logic_error("TokenRing[" + name_ + "]: add_node after finalize");
    }
    if (node == nullptr) {
        throw std::invalid_argument("TokenRing[" + name_ + "]: null node");
    }
    hops_.push_back(Hop{node, hop_delay});
}

void TokenRing::set_hop_delay(std::size_t i, sim::Time d) {
    hops_.at(i).delay = d;
}

void TokenRing::finalize() {
    if (finalized_) return;
    if (hops_.size() < 2) {
        throw std::logic_error("TokenRing[" + name_ + "]: needs >= 2 nodes");
    }
    for (std::size_t i = 0; i < hops_.size(); ++i) {
        TokenEndpoint* next = hops_[(i + 1) % hops_.size()].node;
        // The hop delay is read at pass time so pre-run perturbation works
        // even though finalize() already captured the topology.
        const std::size_t next_idx = (i + 1) % hops_.size();
        hops_[i].node->set_pass_fn([this, i, next, next_idx] {
            ++passes_;
            if (pass_observer_) pass_observer_(i, sched_.now());
            sched_.schedule_after(hops_[i].delay,
                                  sim::EventTag{next, "token.arrive"},
                                  [this, next, next_idx] {
                if (arrive_observer_) arrive_observer_(next_idx, sched_.now());
                next->token_arrive();
            });
        });
    }
    finalized_ = true;
}

}  // namespace st::core
