#include "synchro/token_ring.hpp"

#include <stdexcept>

namespace st::core {

void TokenRing::add_node(TokenEndpoint* node, sim::Time hop_delay) {
    if (finalized_) {
        throw std::logic_error("TokenRing[" + name_ + "]: add_node after finalize");
    }
    if (node == nullptr) {
        throw std::invalid_argument("TokenRing[" + name_ + "]: null node");
    }
    hops_.push_back(Hop{node, hop_delay});
}

void TokenRing::set_hop_delay(std::size_t i, sim::Time d) {
    hops_.at(i).delay = d;
}

void TokenRing::finalize() {
    if (finalized_) return;
    if (hops_.size() < 2) {
        throw std::logic_error("TokenRing[" + name_ + "]: needs >= 2 nodes");
    }
    for (std::size_t i = 0; i < hops_.size(); ++i) {
        // The hop delay is read at pass time so pre-run perturbation works
        // even though finalize() already captured the topology.
        const std::size_t next_idx = (i + 1) % hops_.size();
        hops_[i].node->set_pass_fn([this, i, next_idx] {
            ++passes_;
            if (pass_observer_) pass_observer_(i, sched_.now());
            launch_flight(next_idx, hops_[i].delay);
        });
    }
    finalized_ = true;
}

void TokenRing::launch_flight(std::size_t next_idx, sim::Time delay) {
    Flight f;
    f.id = next_flight_id_++;
    f.next_idx = next_idx;
    f.t = sched_.now() + delay;
    const std::uint64_t id = f.id;
    f.seq = sched_.schedule_after(
        delay, sim::EventTag{hops_[next_idx].node, "token.arrive"},
        [this, id] { arrive(id); });
    flights_.push_back(f);
}

void TokenRing::arrive(std::uint64_t flight_id) {
    std::size_t next_idx = 0;
    bool found = false;
    for (std::size_t k = 0; k < flights_.size(); ++k) {
        if (flights_[k].id == flight_id) {
            next_idx = flights_[k].next_idx;
            flights_.erase(flights_.begin() + static_cast<std::ptrdiff_t>(k));
            found = true;
            break;
        }
    }
    if (!found) {
        throw std::logic_error("TokenRing[" + name_ + "]: unknown flight");
    }
    if (arrive_observer_) arrive_observer_(next_idx, sched_.now());
    hops_[next_idx].node->token_arrive();
}

void TokenRing::save_state(snap::StateWriter& w) const {
    w.begin("ring");
    w.u64(passes_);
    // A flight whose arrival slot is in the past was dropped by the fault
    // interceptor (the callback that would have erased it never ran):
    // the token is gone and must not be resurrected by a restore.
    std::uint64_t live = 0;
    for (const auto& f : flights_) {
        if (f.t > sched_.now()) ++live;
    }
    w.u64(live);
    for (const auto& f : flights_) {
        if (f.t <= sched_.now()) continue;
        w.u64(f.next_idx);
        w.u64(f.t);
        w.u64(f.seq);
    }
    w.end();
}

void TokenRing::restore_state(snap::StateReader& r) {
    r.enter("ring");
    passes_ = r.u64();
    const std::uint64_t live = r.u64();
    flights_.clear();
    for (std::uint64_t k = 0; k < live; ++k) {
        Flight f;
        f.id = next_flight_id_++;
        f.next_idx = static_cast<std::size_t>(r.u64());
        if (f.next_idx >= hops_.size()) {
            throw snap::SnapshotError("TokenRing[" + name_ +
                                      "]: flight hop out of range");
        }
        f.t = r.u64();
        f.seq = r.u64();
        const std::uint64_t id = f.id;
        sched_.rearm(f.t, sim::Priority::kDefault,
                     sim::EventTag{hops_[f.next_idx].node, "token.arrive"},
                     f.seq, [this, id] { arrive(id); });
        flights_.push_back(f);
    }
    r.leave();
}

}  // namespace st::core
