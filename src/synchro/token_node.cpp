#include "synchro/token_node.hpp"

#include <stdexcept>

#include "synchro/wrapper.hpp"

namespace st::core {

TokenNode::TokenNode(std::string name, Params p)
    : name_(std::move(name)), hold_reg_(p.hold), recycle_reg_(p.recycle) {
    if (hold_reg_ == 0) {
        throw std::invalid_argument("TokenNode[" + name_ + "]: hold must be >= 1");
    }
    if (p.initial_holder) {
        phase_ = Phase::kHolding;
        hold_ctr_ = hold_reg_;
        token_here_ = true;
        sb_en_ = true;
    } else {
        phase_ = Phase::kRecycling;
        recycle_ctr_ = (p.initial_recycle == Params::kUseRecycle)
                           ? recycle_reg_
                           : p.initial_recycle;
    }
}

void TokenNode::load_hold_register(std::uint32_t h) {
    if (h == 0) {
        throw std::invalid_argument("TokenNode[" + name_ + "]: hold must be >= 1");
    }
    hold_reg_ = h;
}

void TokenNode::sample(std::uint64_t) {
    // Pure register machine: nothing to read from other sinks.
}

void TokenNode::commit(std::uint64_t) {
    switch (phase_) {
        case Phase::kHolding:
            if (debug_hold_) return;  // breakpoint: counter frozen (paper M)
            if (hold_ctr_ == 0 || --hold_ctr_ == 0) {
                pass_token();  // events E, F, G
            }
            return;
        case Phase::kRecycling:
            if (waiting_) return;  // only the async arrival path leaves this
            if (recycle_ctr_ > 0) --recycle_ctr_;  // event H
            if (recycle_ctr_ == 0) {
                if (token_here_) {
                    enter_holding();  // events A+B -> C
                } else {
                    // Event I: token late; stop the whole SB clock after
                    // this edge (the wrapper ANDs clken over all nodes).
                    waiting_ = true;
                    clken_ = false;
                }
            }
            return;
    }
}

void TokenNode::pass_token() {
    hold_ctr_ = hold_reg_;  // immediate preset (event E)
    phase_ = Phase::kRecycling;
    if (phase_obs_) phase_obs_(phase_);
    recycle_ctr_ = recycle_reg_;
    sb_en_ = false;
    token_here_ = false;
    ++tokens_passed_;
    const unsigned copies = pass_fault_ ? pass_fault_() : 1;
    for (unsigned k = 0; k < copies; ++k) {
        if (pass_fn_) pass_fn_();  // event F: token onto the ring
    }
}

void TokenNode::enter_holding() {
    phase_ = Phase::kHolding;
    if (phase_obs_) phase_obs_(phase_);
    hold_ctr_ = hold_reg_;
    sb_en_ = true;
    clken_ = true;
    // sb_en gates interface handshakes combinationally: transfers that went
    // pending while the node was not holding may complete the instant the
    // enable rises, whether this entry happened at a commit or via the
    // asynchronous late-token path.
    if (wrapper_ != nullptr) wrapper_->on_sb_en_rise(*this);
}

void TokenNode::token_arrive() {
    ++tokens_received_;
    if (phase_ == Phase::kHolding || token_here_) {
        // A second token — while holding, or while one is already latched
        // awaiting recognition — means more than one token is in flight on
        // the ring (misconfiguration or an injected duplicate). Record,
        // don't crash: benches use this counter to demonstrate
        // protocol-rule violations and the fuzz harness requires the fault
        // to surface as a diagnostic rather than vanish silently.
        ++protocol_errors_;
        return;
    }
    token_here_ = true;
    if (waiting_) {
        // Events K, L: late token; recognize immediately and restart the
        // local clock asynchronously. The restarted edge is the edge that
        // "would have happened", so the local-cycle schedule is unchanged.
        ++late_arrivals_;
        waiting_ = false;
        enter_holding();
        if (wrapper_ != nullptr) wrapper_->maybe_restart();
    }
}

void TokenNode::save_state(snap::StateWriter& w) const {
    w.begin("node");
    w.u32(hold_reg_);
    w.u32(recycle_reg_);
    w.u32(hold_ctr_);
    w.u32(recycle_ctr_);
    w.u8(static_cast<std::uint8_t>(phase_));
    w.b(token_here_);
    w.b(waiting_);
    w.b(sb_en_);
    w.b(clken_);
    w.b(debug_hold_);
    w.u64(tokens_passed_);
    w.u64(tokens_received_);
    w.u64(late_arrivals_);
    w.u64(protocol_errors_);
    w.end();
}

void TokenNode::restore_state(snap::StateReader& r) {
    r.enter("node");
    hold_reg_ = r.u32();
    recycle_reg_ = r.u32();
    hold_ctr_ = r.u32();
    recycle_ctr_ = r.u32();
    phase_ = static_cast<Phase>(r.u8());
    token_here_ = r.b();
    waiting_ = r.b();
    sb_en_ = r.b();
    clken_ = r.b();
    debug_hold_ = r.b();
    tokens_passed_ = r.u64();
    tokens_received_ = r.u64();
    late_arrivals_ = r.u64();
    protocol_errors_ = r.u64();
    r.leave();
}

}  // namespace st::core
