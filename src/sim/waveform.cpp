#include "sim/waveform.hpp"

#include <algorithm>
#include <sstream>

namespace st::sim {

int WaveRecorder::add_signal(std::string name, bool is_bit,
                             std::uint64_t initial) {
    Track t;
    t.name = std::move(name);
    t.is_bit = is_bit;
    t.initial = initial;
    tracks_.push_back(std::move(t));
    return static_cast<int>(tracks_.size()) - 1;
}

void WaveRecorder::change(int handle, std::uint64_t value, Time t) {
    tracks_.at(static_cast<std::size_t>(handle)).changes[t] = value;
}

void WaveRecorder::annotate(int handle, char letter, Time t) {
    tracks_.at(static_cast<std::size_t>(handle)).annotations.emplace(t, letter);
}

std::uint64_t WaveRecorder::Track::value_at(Time t) const {
    auto it = changes.upper_bound(t);
    if (it == changes.begin()) return initial;
    return std::prev(it)->second;
}

std::string WaveRecorder::render(Time t0, Time t1, Time dt) const {
    std::ostringstream out;
    if (dt == 0 || t1 <= t0) return {};
    const std::size_t cols = static_cast<std::size_t>((t1 - t0 + dt - 1) / dt);

    std::size_t label_w = 0;
    for (const auto& tr : tracks_) label_w = std::max(label_w, tr.name.size());

    for (const auto& tr : tracks_) {
        // Annotation row (only when this track has annotations in range).
        std::string notes(cols, ' ');
        bool any_note = false;
        for (const auto& [at, letter] : tr.annotations) {
            if (at < t0 || at >= t1) continue;
            notes[static_cast<std::size_t>((at - t0) / dt)] = letter;
            any_note = true;
        }
        if (any_note) {
            out << std::string(label_w + 2, ' ') << notes << '\n';
        }

        out << tr.name << std::string(label_w - tr.name.size(), ' ') << " |";
        std::uint64_t prev = tr.value_at(t0 == 0 ? 0 : t0 - 1);
        for (std::size_t c = 0; c < cols; ++c) {
            const Time t = t0 + static_cast<Time>(c) * dt;
            const std::uint64_t v = tr.value_at(t);
            if (tr.is_bit) {
                if (v != prev) {
                    out << (v ? '/' : '\\');
                } else {
                    out << (v ? '^' : '_');
                }
            } else {
                out << (v <= 9 ? static_cast<char>('0' + v) : '+');
            }
            prev = v;
        }
        out << '\n';
    }
    return out.str();
}

}  // namespace st::sim
