#pragma once

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstdint>
#include <vector>

#include "sim/time.hpp"

namespace st::sim {

/// The (time, priority, seq) dispatch core: a priority queue over the
/// kernel's total event order, extracted out of `Scheduler` so every
/// front-end — the scalar `sim::Scheduler` and the gang engine's lockstep
/// lane drivers (`st::gang`) — shares one dispatch structure.
///
/// Ordering contract: entries pop in strictly increasing (time, priority,
/// seq). Because `seq` is unique per queue, this is a *strict total order* —
/// the pop sequence is a pure function of the pushed set, independent of the
/// queue's internal arrangement. That is what licenses the implementation
/// choices below (4-ary implicit heap, packed keys, same-slot buckets): they
/// change only constant factors, never the order, so golden traces are
/// byte-identical to the historical binary-heap kernel.
///
/// Implementation: a 4-ary implicit min-heap over 24-byte entries, fronted
/// by per-priority *same-slot buckets*.
///  * `priority` (3 bits) and `seq` (61 bits) pack into one u64 key, so an
///    ordering compare is two u64 compares instead of three field compares.
///  * 4-ary halves the tree depth of the hot sift-down at the cost of three
///    extra child compares per level — a good trade when entries are small
///    and the working set lives in L1/L2 (the common shallow-queue case).
///  * The payload rides in the entry (a pointer into the owner's slab pool),
///    so sifts move 24 bytes and never touch a callback.
///  * **Same-slot buckets**: the dominant push pattern in a clocked model is
///    the zero-delay cascade — an executing event schedules followers at the
///    *current* timestamp (edge → commit → gate → monitor is >half of all
///    traffic in the NoC topologies). A push at `t == slot_t_` (the time of
///    the most recent pop) whose key exceeds its bucket's tail appends to a
///    per-priority FIFO instead of sifting into the heap; pops 2-way-merge
///    the earliest bucket head with the heap front. Each bucket is ascending
///    in key by construction and all bucket entries share one timestamp, so
///    the earliest bucket entry is simply the head of the lowest-priority
///    non-empty bucket — the merge is O(1), turning the cascade's heap
///    churn into array appends and index bumps.
template <typename Payload>
class DispatchCore {
  public:
    struct Entry {
        Time t = 0;
        std::uint64_t key = 0;  ///< (priority << kSeqBits) | seq
        Payload payload{};
    };

    static constexpr unsigned kSeqBits = 61;
    static constexpr std::uint64_t kSeqMask = (1ull << kSeqBits) - 1;
    static constexpr int kNumPriorities = 8;  ///< 3-bit packed priority

    static std::uint64_t pack(int priority, std::uint64_t seq) {
        assert(seq <= kSeqMask && "DispatchCore: seq overflows packed key");
        assert(priority >= 0 && priority < kNumPriorities);
        return (static_cast<std::uint64_t>(priority) << kSeqBits) | seq;
    }
    static int priority_of(std::uint64_t key) {
        return static_cast<int>(key >> kSeqBits);
    }
    static std::uint64_t seq_of(std::uint64_t key) { return key & kSeqMask; }

    bool empty() const { return size_ == 0; }
    std::size_t size() const { return size_; }

    /// Earliest entry. Precondition: !empty().
    const Entry& front() const {
        if (bucket_mask_ != 0) {
            const Bucket& b = buckets_[std::countr_zero(bucket_mask_)];
            const Entry& be = b.q[b.head];
            if (heap_.empty() || !earlier(heap_.front(), be)) return be;
        }
        return heap_.front();
    }

    void push(Time t, int priority, std::uint64_t seq, Payload payload) {
        ++size_;
        const std::uint64_t key = pack(priority, seq);
        if (slot_valid_ && t == slot_t_) {
            Bucket& b = buckets_[priority];
            if (b.head == b.q.size()) {
                // Drained bucket: recycle the storage in place.
                b.q.clear();
                b.head = 0;
                b.q.push_back(Entry{t, key, payload});
                bucket_mask_ |= 1u << priority;
                return;
            }
            if (key > b.q.back().key) {
                b.q.push_back(Entry{t, key, payload});
                return;
            }
            // Out-of-order same-slot push (a restore replaying an old seq):
            // the bucket must stay ascending, so fall through to the heap —
            // the pop-side merge keeps the total order exact either way.
        }
        heap_.push_back(Entry{t, key, payload});
        sift_up(heap_.size() - 1);
    }

    /// Remove and return the earliest entry. Precondition: !empty().
    Entry pop() {
        --size_;
        if (bucket_mask_ != 0) {
            const int p = std::countr_zero(bucket_mask_);
            Bucket& b = buckets_[p];
            const Entry& be = b.q[b.head];
            if (heap_.empty() || !earlier(heap_.front(), be)) {
                Entry out = be;
                if (++b.head == b.q.size()) {
                    b.q.clear();
                    b.head = 0;
                    bucket_mask_ &= ~(1u << p);
                }
                return out;  // out.t == slot_t_: the slot is unchanged
            }
        }
        Entry top = heap_.front();
        const std::size_t n = heap_.size() - 1;
        if (n > 0) {
            heap_.front() = heap_[n];
            heap_.pop_back();
            sift_down(0);
        } else {
            heap_.pop_back();
        }
        // Pops are monotone in (t, key), so while buckets hold entries at
        // slot_t_ a heap pop can only share that timestamp (with a smaller
        // key); the slot advances only once every bucket has drained.
        assert(bucket_mask_ == 0 || top.t == slot_t_);
        slot_valid_ = true;
        slot_t_ = top.t;
        return top;
    }

    /// Drop every pending entry (the gang lane-reset path). The caller owns
    /// payload cleanup — iterate via drain() when payloads need releasing.
    void clear() {
        heap_.clear();
        reset_buckets();
        size_ = 0;
        // A restore may replay seqs below anything already popped; the slot
        // FIFO invariant assumes monotone seqs, so force fresh pushes back
        // through the heap until the next pop re-establishes the slot.
        slot_valid_ = false;
    }

    /// Pop-all without ordering guarantees: hands each payload to `fn` and
    /// leaves the queue empty. Used to recycle event records on reset.
    template <typename Fn>
    void drain(Fn&& fn) {
        for (Entry& e : heap_) fn(e.payload);
        for (Bucket& b : buckets_) {
            for (std::size_t i = b.head; i < b.q.size(); ++i) {
                fn(b.q[i].payload);
            }
        }
        heap_.clear();
        reset_buckets();
        size_ = 0;
        slot_valid_ = false;
    }

  private:
    /// One priority's same-slot FIFO: entries share t == slot_t_ and are
    /// ascending in key (append requires key > back), so head-order is pop
    /// order within the bucket.
    struct Bucket {
        std::vector<Entry> q;
        std::size_t head = 0;
    };

    static bool earlier(const Entry& a, const Entry& b) {
        if (a.t != b.t) return a.t < b.t;
        return a.key < b.key;
    }

    void reset_buckets() {
        for (Bucket& b : buckets_) {
            b.q.clear();
            b.head = 0;
        }
        bucket_mask_ = 0;
    }

    void sift_up(std::size_t i) {
        Entry e = heap_[i];
        while (i > 0) {
            const std::size_t parent = (i - 1) / 4;
            if (!earlier(e, heap_[parent])) break;
            heap_[i] = heap_[parent];
            i = parent;
        }
        heap_[i] = e;
    }

    void sift_down(std::size_t i) {
        const std::size_t n = heap_.size();
        Entry e = heap_[i];
        for (;;) {
            const std::size_t first = 4 * i + 1;
            if (first >= n) break;
            std::size_t best = first;
            const std::size_t last = std::min(first + 4, n);
            for (std::size_t c = first + 1; c < last; ++c) {
                if (earlier(heap_[c], heap_[best])) best = c;
            }
            if (!earlier(heap_[best], e)) break;
            heap_[i] = heap_[best];
            i = best;
        }
        heap_[i] = e;
    }

    std::vector<Entry> heap_;
    Bucket buckets_[kNumPriorities];
    std::uint32_t bucket_mask_ = 0;  ///< bit p set ⇔ buckets_[p] non-empty
    Time slot_t_ = 0;                ///< timestamp of the most recent pop
    bool slot_valid_ = false;        ///< false until a pop (or after clear)
    std::size_t size_ = 0;           ///< heap + buckets
};

}  // namespace st::sim
