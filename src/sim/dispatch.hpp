#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <vector>

#include "sim/time.hpp"

namespace st::sim {

/// The (time, priority, seq) dispatch core: a priority queue over the
/// kernel's total event order, extracted out of `Scheduler` so every
/// front-end — the scalar `sim::Scheduler` and the gang engine's lockstep
/// lane drivers (`st::gang`) — shares one dispatch structure.
///
/// Ordering contract: entries pop in strictly increasing (time, priority,
/// seq). Because `seq` is unique per queue, this is a *strict total order* —
/// the pop sequence is a pure function of the pushed set, independent of the
/// queue's internal arrangement. That is what licenses the implementation
/// choices below (4-ary implicit heap, packed keys): they change only
/// constant factors, never the order, so golden traces are byte-identical
/// to the historical binary-heap kernel.
///
/// Implementation: a 4-ary implicit min-heap over 24-byte entries.
///  * `priority` (3 bits) and `seq` (61 bits) pack into one u64 key, so an
///    ordering compare is two u64 compares instead of three field compares.
///  * 4-ary halves the tree depth of the hot sift-down at the cost of three
///    extra child compares per level — a good trade when entries are small
///    and the working set lives in L1/L2 (the common shallow-queue case).
///  * The payload rides in the entry (a pointer into the owner's slab pool),
///    so sifts move 24 bytes and never touch a callback.
template <typename Payload>
class DispatchCore {
  public:
    struct Entry {
        Time t = 0;
        std::uint64_t key = 0;  ///< (priority << kSeqBits) | seq
        Payload payload{};
    };

    static constexpr unsigned kSeqBits = 61;
    static constexpr std::uint64_t kSeqMask = (1ull << kSeqBits) - 1;

    static std::uint64_t pack(int priority, std::uint64_t seq) {
        assert(seq <= kSeqMask && "DispatchCore: seq overflows packed key");
        assert(priority >= 0 && priority < 8);
        return (static_cast<std::uint64_t>(priority) << kSeqBits) | seq;
    }
    static int priority_of(std::uint64_t key) {
        return static_cast<int>(key >> kSeqBits);
    }
    static std::uint64_t seq_of(std::uint64_t key) { return key & kSeqMask; }

    bool empty() const { return heap_.empty(); }
    std::size_t size() const { return heap_.size(); }

    /// Earliest entry. Precondition: !empty().
    const Entry& front() const { return heap_.front(); }

    void push(Time t, int priority, std::uint64_t seq, Payload payload) {
        heap_.push_back(Entry{t, pack(priority, seq), payload});
        sift_up(heap_.size() - 1);
    }

    /// Remove and return the earliest entry. Precondition: !empty().
    Entry pop() {
        Entry top = heap_.front();
        const std::size_t n = heap_.size() - 1;
        if (n > 0) {
            heap_.front() = heap_[n];
            heap_.pop_back();
            sift_down(0);
        } else {
            heap_.pop_back();
        }
        return top;
    }

    /// Drop every pending entry (the gang lane-reset path). The caller owns
    /// payload cleanup — iterate via drain() when payloads need releasing.
    void clear() { heap_.clear(); }

    /// Pop-all without ordering guarantees: hands each payload to `fn` and
    /// leaves the queue empty. Used to recycle event records on reset.
    template <typename Fn>
    void drain(Fn&& fn) {
        for (Entry& e : heap_) fn(e.payload);
        heap_.clear();
    }

  private:
    static bool earlier(const Entry& a, const Entry& b) {
        if (a.t != b.t) return a.t < b.t;
        return a.key < b.key;
    }

    void sift_up(std::size_t i) {
        Entry e = heap_[i];
        while (i > 0) {
            const std::size_t parent = (i - 1) / 4;
            if (!earlier(e, heap_[parent])) break;
            heap_[i] = heap_[parent];
            i = parent;
        }
        heap_[i] = e;
    }

    void sift_down(std::size_t i) {
        const std::size_t n = heap_.size();
        Entry e = heap_[i];
        for (;;) {
            const std::size_t first = 4 * i + 1;
            if (first >= n) break;
            std::size_t best = first;
            const std::size_t last = std::min(first + 4, n);
            for (std::size_t c = first + 1; c < last; ++c) {
                if (earlier(heap_[c], heap_[best])) best = c;
            }
            if (!earlier(heap_[best], e)) break;
            heap_[i] = heap_[best];
            i = best;
        }
        heap_[i] = e;
    }

    std::vector<Entry> heap_;
};

}  // namespace st::sim
