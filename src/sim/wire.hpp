#pragma once

#include <functional>
#include <utility>
#include <vector>

#include "sim/scheduler.hpp"

namespace st::sim {

/// A value-carrying signal with change observers.
///
/// `set()` updates immediately (used inside clocked commit phases);
/// `drive()` models a wire/propagation delay by scheduling the update.
/// Observers run in subscription order, preserving kernel determinism.
template <typename T>
class Wire {
  public:
    using Observer = std::function<void(const T& new_value)>;

    Wire(Scheduler& sched, T initial)
        : sched_(&sched), value_(std::move(initial)) {}

    const T& value() const { return value_; }

    /// Immediate update; notifies observers only when the value changes.
    void set(const T& v) {
        if (v == value_) return;
        value_ = v;
        last_change_ = sched_->now();
        for (auto& obs : observers_) obs(value_);
    }

    /// Update after `delay` picoseconds (transport delay: every scheduled
    /// transition is delivered, in order, like an ideal wire).
    void drive(T v, Time delay, Priority p = Priority::kDefault) {
        sched_->schedule_after(delay, p,
                               [this, v = std::move(v)] { set(v); });
    }

    /// Register a change observer.
    void observe(Observer obs) { observers_.push_back(std::move(obs)); }

    /// Time of the most recent value change (0 if never changed).
    Time last_change() const { return last_change_; }

    Scheduler& scheduler() const { return *sched_; }

  private:
    Scheduler* sched_;
    T value_;
    Time last_change_ = 0;
    std::vector<Observer> observers_;
};

/// Boolean wire helpers for edge-sensitive logic (handshake signals, tokens).
class BitWire : public Wire<bool> {
  public:
    BitWire(Scheduler& sched, bool initial) : Wire<bool>(sched, initial) {}

    /// Register a callback invoked on rising edges only.
    void on_rise(std::function<void()> cb) {
        observe([cb = std::move(cb)](bool v) {
            if (v) cb();
        });
    }

    /// Register a callback invoked on falling edges only.
    void on_fall(std::function<void()> cb) {
        observe([cb = std::move(cb)](bool v) {
            if (!v) cb();
        });
    }

    /// Register a callback invoked on any transition.
    void on_edge(std::function<void(bool)> cb) { observe(std::move(cb)); }

    void toggle() { set(!value()); }
};

}  // namespace st::sim
