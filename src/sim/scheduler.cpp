#include "sim/scheduler.hpp"

#include <stdexcept>

namespace st::sim {

namespace {
/// Cap on recorded races: a systemic ordering bug would otherwise flood the
/// record with one entry per clock cycle.
constexpr std::size_t kMaxRaceRecords = 64;
}  // namespace

Scheduler::~Scheduler() = default;

Scheduler::Event* Scheduler::acquire_event() {
    if (free_.empty()) {
        slabs_.push_back(std::make_unique<Event[]>(kSlabSize));
        Event* base = slabs_.back().get();
        free_.reserve(free_.size() + kSlabSize);
        for (std::size_t i = 0; i < kSlabSize; ++i) {
            free_.push_back(base + i);
        }
    }
    Event* ev = free_.back();
    free_.pop_back();
    return ev;
}

void Scheduler::release_event(Event* ev) {
    // The callback was either moved out (executed) or is dropped here; either
    // way the record returns to the free list empty.
    ev->cb.reset();
    ev->tag = EventTag{};
    free_.push_back(ev);
}

void Scheduler::schedule_at(Time t, Priority p, EventTag tag, Callback cb) {
    if (t < now_) {
        throw std::logic_error("Scheduler: event scheduled in the past");
    }
    Event* ev = acquire_event();
    ev->tag = tag;
    ev->cb = std::move(cb);
    heap_.push_back(HeapEntry{t, static_cast<int>(p), next_seq_++, ev});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
}

void Scheduler::set_race_audit(bool on) {
    audit_ = on;
    group_.clear();
    group_priority_ = -1;
}

void Scheduler::audit_step(Time t, int priority, const EventTag& tag) {
    if (t != group_t_ || priority != group_priority_) {
        group_t_ = t;
        group_priority_ = priority;
        group_.clear();
    }
    if (tag.actor == nullptr) return;
    for (const auto& m : group_) {
        if (m.actor == tag.actor && races_.size() < kMaxRaceRecords) {
            RaceRecord r;
            r.t = t;
            r.priority = priority;
            r.actor = tag.actor;
            r.first = m.label != nullptr ? m.label : "?";
            r.second = tag.label != nullptr ? tag.label : "?";
            races_.push_back(std::move(r));
        }
    }
    group_.push_back(GroupMember{tag.actor, tag.label});
}

bool Scheduler::step() {
    if (heap_.empty()) return false;
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    const HeapEntry e = heap_.back();
    heap_.pop_back();
    now_ = e.t;
    Event* ev = e.ev;
    if (interceptor_ && ev->tag.actor != nullptr &&
        !interceptor_(ev->tag, e.t)) {
        // Dropped: the transition never happened as far as any model can
        // tell. Invisible to the race audit — a lost event orders nothing.
        release_event(ev);
        ++dropped_;
        return true;
    }
    ++executed_;
    if (audit_) audit_step(e.t, e.priority, ev->tag);
    // Move the callback out and recycle the record *before* invoking: the
    // callback is free to schedule new events (which may reuse this record).
    Callback cb = std::move(ev->cb);
    release_event(ev);
    cb();
    return true;
}

std::uint64_t Scheduler::run_until(Time t_end) {
    std::uint64_t n = 0;
    while (!heap_.empty() && heap_.front().t <= t_end) {
        step();
        ++n;
    }
    if (now_ < t_end) now_ = t_end;
    return n;
}

std::uint64_t Scheduler::run(std::uint64_t max_events) {
    std::uint64_t n = 0;
    while (n < max_events && step()) ++n;
    return n;
}

}  // namespace st::sim
