#include "sim/scheduler.hpp"

#include <stdexcept>

namespace st::sim {

namespace {
/// Cap on recorded races: a systemic ordering bug would otherwise flood the
/// record with one entry per clock cycle.
constexpr std::size_t kMaxRaceRecords = 64;
}  // namespace

void Scheduler::schedule_at(Time t, Priority p, EventTag tag, Callback cb) {
    if (t < now_) {
        throw std::logic_error("Scheduler: event scheduled in the past");
    }
    queue_.push(
        Event{t, static_cast<int>(p), next_seq_++, tag, std::move(cb)});
}

void Scheduler::set_race_audit(bool on) {
    audit_ = on;
    group_.clear();
    group_priority_ = -1;
}

void Scheduler::audit_step(const Event& ev) {
    if (ev.t != group_t_ || ev.priority != group_priority_) {
        group_t_ = ev.t;
        group_priority_ = ev.priority;
        group_.clear();
    }
    if (ev.tag.actor == nullptr) return;
    for (const auto& m : group_) {
        if (m.actor == ev.tag.actor && races_.size() < kMaxRaceRecords) {
            RaceRecord r;
            r.t = ev.t;
            r.priority = ev.priority;
            r.actor = ev.tag.actor;
            r.first = m.label != nullptr ? m.label : "?";
            r.second = ev.tag.label != nullptr ? ev.tag.label : "?";
            races_.push_back(std::move(r));
        }
    }
    group_.push_back(GroupMember{ev.tag.actor, ev.tag.label});
}

bool Scheduler::step() {
    if (queue_.empty()) return false;
    // priority_queue::top() returns const&; move out via const_cast is UB-free
    // here because we pop immediately and Event's move leaves it destructible.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.t;
    if (interceptor_ && ev.tag.actor != nullptr &&
        !interceptor_(ev.tag, ev.t)) {
        // Dropped: the transition never happened as far as any model can
        // tell. Invisible to the race audit — a lost event orders nothing.
        ++dropped_;
        return true;
    }
    ++executed_;
    if (audit_) audit_step(ev);
    ev.cb();
    return true;
}

std::uint64_t Scheduler::run_until(Time t_end) {
    std::uint64_t n = 0;
    while (!queue_.empty() && queue_.top().t <= t_end) {
        step();
        ++n;
    }
    if (now_ < t_end) now_ = t_end;
    return n;
}

std::uint64_t Scheduler::run(std::uint64_t max_events) {
    std::uint64_t n = 0;
    while (n < max_events && step()) ++n;
    return n;
}

}  // namespace st::sim
