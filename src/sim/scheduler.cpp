#include "sim/scheduler.hpp"

#include <stdexcept>

namespace st::sim {

void Scheduler::schedule_at(Time t, Priority p, Callback cb) {
    if (t < now_) {
        throw std::logic_error("Scheduler: event scheduled in the past");
    }
    queue_.push(Event{t, static_cast<int>(p), next_seq_++, std::move(cb)});
}

bool Scheduler::step() {
    if (queue_.empty()) return false;
    // priority_queue::top() returns const&; move out via const_cast is UB-free
    // here because we pop immediately and Event's move leaves it destructible.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.t;
    ++executed_;
    ev.cb();
    return true;
}

std::uint64_t Scheduler::run_until(Time t_end) {
    std::uint64_t n = 0;
    while (!queue_.empty() && queue_.top().t <= t_end) {
        step();
        ++n;
    }
    if (now_ < t_end) now_ = t_end;
    return n;
}

std::uint64_t Scheduler::run(std::uint64_t max_events) {
    std::uint64_t n = 0;
    while (n < max_events && step()) ++n;
    return n;
}

}  // namespace st::sim
