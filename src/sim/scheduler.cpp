#include "sim/scheduler.hpp"

#include <stdexcept>

namespace st::sim {

namespace {
/// Cap on recorded races: a systemic ordering bug would otherwise flood the
/// record with one entry per clock cycle.
constexpr std::size_t kMaxRaceRecords = 64;

/// Cap on thread-local recycled slabs: 256 slabs x 64 events bounds a worker
/// thread's parked pool at a few MB while still covering the deepest queue
/// any bench topology produces.
constexpr std::size_t kMaxPooledSlabs = 256;
}  // namespace

std::vector<std::unique_ptr<Scheduler::Event[]>>& Scheduler::slab_pool() {
    thread_local std::vector<std::unique_ptr<Event[]>> pool;
    return pool;
}

std::size_t Scheduler::tls_pooled_slabs() { return slab_pool().size(); }

Scheduler::~Scheduler() {
    // Donate slabs to the thread's recycle pool instead of freeing them: a
    // sweep worker builds one Soc (one Scheduler) per case, and per-case
    // slab churn was contended allocator traffic across worker threads.
    // Pending callbacks (events never executed) live in slab slots; reset
    // every slot so nothing owned by a dead run survives into the pool.
    auto& pool = slab_pool();
    for (auto& slab : slabs_) {
        if (pool.size() >= kMaxPooledSlabs) break;
        for (std::size_t i = 0; i < kSlabSize; ++i) {
            slab[i].cb.reset();
            slab[i].tag = EventTag{};
        }
        pool.push_back(std::move(slab));
    }
}

Scheduler::Event* Scheduler::acquire_event() {
    if (free_.empty()) {
        auto& pool = slab_pool();
        if (!pool.empty()) {
            slabs_.push_back(std::move(pool.back()));
            pool.pop_back();
        } else {
            slabs_.push_back(std::make_unique<Event[]>(kSlabSize));
        }
        Event* base = slabs_.back().get();
        free_.reserve(free_.size() + kSlabSize);
        for (std::size_t i = 0; i < kSlabSize; ++i) {
            free_.push_back(base + i);
        }
    }
    Event* ev = free_.back();
    free_.pop_back();
    return ev;
}

void Scheduler::release_event(Event* ev) {
    // The callback was either moved out (executed) or is dropped here; either
    // way the record returns to the free list empty.
    ev->cb.reset();
    ev->tag = EventTag{};
    free_.push_back(ev);
}

std::uint64_t Scheduler::schedule_at(Time t, Priority p, EventTag tag,
                                     Callback cb) {
    if (t < now_) {
        throw std::logic_error("Scheduler: event scheduled in the past");
    }
    if (restoring_) {
        throw std::logic_error(
            "Scheduler: schedule_at during restore — use rearm()");
    }
    Event* ev = acquire_event();
    ev->tag = tag;
    ev->cb = std::move(cb);
    const std::uint64_t seq = next_seq_++;
    queue_.push(t, static_cast<int>(p), seq, ev);
    return seq;
}

std::uint64_t Scheduler::settle() {
    std::uint64_t n = 0;
    while (!queue_.empty() && queue_.front().t == now_) {
        step();
        ++n;
    }
    return n;
}

void Scheduler::clear_pending() {
    queue_.drain([this](Event* ev) { release_event(ev); });
    stop_requested_ = false;
}

void Scheduler::save_state(snap::StateWriter& w, bool require_boundary) const {
    if (require_boundary && !at_slot_boundary()) {
        throw snap::SnapshotError(
            "Scheduler::save_state mid-slot — settle() first");
    }
    w.begin("sched");
    w.u64(now_);
    w.u64(next_seq_);
    w.u64(executed_);
    w.u64(dropped_);
    w.u64(queue_.size());
    w.end();
}

void Scheduler::begin_restore(snap::StateReader& r) {
    if (!queue_.empty() || restoring_) {
        throw snap::SnapshotError(
            "Scheduler::begin_restore on a non-fresh scheduler");
    }
    r.enter("sched");
    now_ = r.u64();
    next_seq_ = r.u64();
    executed_ = r.u64();
    dropped_ = r.u64();
    expected_pending_ = r.u64();
    r.leave();
    restoring_ = true;
    staged_.clear();
}

void Scheduler::rearm(Time t, Priority p, EventTag tag,
                      std::uint64_t orig_seq, Callback cb) {
    if (!restoring_) {
        throw std::logic_error("Scheduler: rearm outside restore");
    }
    if (t < now_) {
        throw snap::SnapshotError("rearm: event fire time in the past");
    }
    staged_.push_back(Staged{t, p, tag, orig_seq, std::move(cb)});
}

void Scheduler::end_restore() {
    if (!restoring_) {
        throw std::logic_error("Scheduler: end_restore outside restore");
    }
    restoring_ = false;
    if (staged_.size() != expected_pending_) {
        throw snap::SnapshotError(
            "restore re-armed " + std::to_string(staged_.size()) +
            " events but the snapshot recorded " +
            std::to_string(expected_pending_) +
            " pending — a component missed (or double-counted) an event");
    }
    // Re-insert under the ORIGINAL sequence numbers. Every orig_seq is
    // below the saved next_seq_, so restored events still sort ahead of
    // anything scheduled after the restore, ties break exactly as in the
    // saving run, and — because components persist their events' seqs —
    // the next snapshot of this scheduler is byte-identical to what the
    // saving run would have produced.
    std::sort(staged_.begin(), staged_.end(),
              [](const Staged& a, const Staged& b) {
                  return a.orig_seq < b.orig_seq;
              });
    for (std::size_t i = 1; i < staged_.size(); ++i) {
        if (staged_[i].orig_seq == staged_[i - 1].orig_seq) {
            throw snap::SnapshotError(
                "restore staged two events with seq " +
                std::to_string(staged_[i].orig_seq));
        }
    }
    if (!staged_.empty() && staged_.back().orig_seq >= next_seq_) {
        throw snap::SnapshotError(
            "restore staged seq " + std::to_string(staged_.back().orig_seq) +
            " >= the snapshot's next_seq " + std::to_string(next_seq_));
    }
    for (auto& s : staged_) {
        Event* ev = acquire_event();
        ev->tag = s.tag;
        ev->cb = std::move(s.cb);
        queue_.push(s.t, static_cast<int>(s.p), s.orig_seq, ev);
    }
    staged_.clear();
}

void Scheduler::set_race_audit(bool on) {
    audit_ = on;
    group_.clear();
    group_priority_ = -1;
}

void Scheduler::audit_step(Time t, int priority, const EventTag& tag) {
    if (t != group_t_ || priority != group_priority_) {
        group_t_ = t;
        group_priority_ = priority;
        group_.clear();
    }
    if (tag.actor == nullptr) return;
    for (const auto& m : group_) {
        if (m.actor == tag.actor && races_.size() < kMaxRaceRecords) {
            RaceRecord r;
            r.t = t;
            r.priority = priority;
            r.actor = tag.actor;
            r.first = m.label != nullptr ? m.label : "?";
            r.second = tag.label != nullptr ? tag.label : "?";
            races_.push_back(std::move(r));
        }
    }
    group_.push_back(GroupMember{tag.actor, tag.label});
}

bool Scheduler::step() {
    if (queue_.empty()) return false;
    const auto e = queue_.pop();
    now_ = e.t;
    Event* ev = e.payload;
    if (interceptor_ && ev->tag.actor != nullptr &&
        !interceptor_(ev->tag, e.t)) {
        // Dropped: the transition never happened as far as any model can
        // tell. Invisible to the race audit — a lost event orders nothing.
        release_event(ev);
        ++dropped_;
        return true;
    }
    ++executed_;
    if (audit_) {
        audit_step(e.t, DispatchCore<Event*>::priority_of(e.key), ev->tag);
    }
    // Move the callback out and recycle the record *before* invoking: the
    // callback is free to schedule new events (which may reuse this record).
    Callback cb = std::move(ev->cb);
    release_event(ev);
    cb();
    return true;
}

std::uint64_t Scheduler::run_until(Time t_end) {
    std::uint64_t n = 0;
    while (!stop_requested_ && !queue_.empty() && queue_.front().t <= t_end) {
        step();
        ++n;
    }
    if (!stop_requested_ && now_ < t_end) now_ = t_end;
    return n;
}

std::uint64_t Scheduler::run(std::uint64_t max_events) {
    std::uint64_t n = 0;
    while (!stop_requested_ && n < max_events && step()) ++n;
    return n;
}

}  // namespace st::sim
