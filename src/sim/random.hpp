#pragma once

#include <cstdint>

namespace st::sim {

/// Deterministic, explicitly-seeded PRNG (splitmix64 core).
///
/// All randomness in the repository flows through instances of this class so
/// that every simulation is exactly reproducible from its seed. The kernel
/// itself never consults a PRNG; only workloads and sweep generators do.
class Rng {
  public:
    explicit Rng(std::uint64_t seed) : state_(seed ^ 0x9e3779b97f4a7c15ull) {}

    /// Next raw 64-bit value.
    std::uint64_t next_u64() {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /// Uniform value in [0, bound). bound == 0 yields 0.
    std::uint64_t next_below(std::uint64_t bound) {
        if (bound == 0) return 0;
        // Rejection sampling to avoid modulo bias.
        const std::uint64_t limit = bound * ((~0ull) / bound);
        std::uint64_t v = next_u64();
        while (v >= limit) v = next_u64();
        return v % bound;
    }

    /// Uniform value in the inclusive range [lo, hi].
    std::uint64_t next_in(std::uint64_t lo, std::uint64_t hi) {
        return lo + next_below(hi - lo + 1);
    }

    /// Uniform double in [0, 1).
    double next_double() {
        return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
    }

    /// Bernoulli draw with probability p of returning true.
    bool next_bool(double p = 0.5) { return next_double() < p; }

  private:
    std::uint64_t state_;
};

}  // namespace st::sim
