#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace st::sim {

/// Records value changes of named signals and renders an ASCII waveform —
/// the textual analogue of the paper's Figure 2. Counter-valued signals
/// render their digits; single-bit signals render as high/low rails.
class WaveRecorder {
  public:
    /// Register a signal. `is_bit` selects rail rendering vs digit rendering.
    int add_signal(std::string name, bool is_bit, std::uint64_t initial = 0);

    /// Report a value change at time `t` (non-decreasing per signal).
    void change(int handle, std::uint64_t value, Time t);

    /// Attach an annotation letter (the paper marks events A..M) at time `t`
    /// on the given signal's row.
    void annotate(int handle, char letter, Time t);

    /// Render all signals over [t0, t1) with one column per `dt` picoseconds.
    std::string render(Time t0, Time t1, Time dt) const;

  private:
    struct Track {
        std::string name;
        bool is_bit = true;
        std::uint64_t initial = 0;
        std::map<Time, std::uint64_t> changes;     // time -> new value
        std::multimap<Time, char> annotations;
        std::uint64_t value_at(Time t) const;
    };
    std::vector<Track> tracks_;
};

}  // namespace st::sim
