#pragma once

#include <cassert>
#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace st::sim {

template <typename Sig>
class BasicSmallFn;

/// Move-only callable with small-buffer-optimised storage, generic in its
/// call signature.
///
/// This is the scheduler's event-callback machinery. The event hot path
/// schedules millions of tiny lambdas — `[this]`, `[this, cycle]`,
/// `[this, i, fault]` — whose captures fit in a few machine words;
/// `std::function` heap-allocates and type-erases through a copyable
/// interface neither of which the kernel needs. BasicSmallFn stores any
/// callable whose state fits `kInlineSize` bytes (and is
/// nothrow-move-constructible) inline; larger or throwing-move callables
/// fall back to a single heap allocation.
///
/// Being move-only it also accepts captures `std::function` cannot
/// (e.g. `std::unique_ptr`), which models "this event owns its payload".
///
/// Two instantiations ship: `SmallFn` (`void()`, the event callback) and
/// `Scheduler::Interceptor` (`bool(const EventTag&, Time)`, the fault
/// surface) — the latter so fault-injected campaigns keep the
/// allocation-free hot path end to end.
template <typename R, typename... Args>
class BasicSmallFn<R(Args...)> {
  public:
    /// Inline capture budget. Covers every callback the shipped models
    /// schedule (typically `this` + a couple of scalars) with room for a
    /// `std::function`-sized capture; measured against the repo's own call
    /// sites, nothing in the hot path spills to the heap.
    static constexpr std::size_t kInlineSize = 48;

    BasicSmallFn() noexcept = default;
    // NOLINTNEXTLINE(google-explicit-constructor)
    BasicSmallFn(std::nullptr_t) noexcept {}

    template <typename F, typename D = std::decay_t<F>,
              typename = std::enable_if_t<
                  !std::is_same_v<D, BasicSmallFn> &&
                  std::is_invocable_r_v<R, D&, Args...>>>
    BasicSmallFn(F&& f) {  // NOLINT(google-explicit-constructor)
        if constexpr (fits_inline<D>()) {
            ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
            ops_ = &kInlineOps<D>;
        } else {
            using P = D*;
            ::new (static_cast<void*>(buf_)) P(new D(std::forward<F>(f)));
            ops_ = &kHeapOps<D>;
        }
    }

    BasicSmallFn(BasicSmallFn&& other) noexcept { steal(other); }

    BasicSmallFn& operator=(BasicSmallFn&& other) noexcept {
        if (this != &other) {
            reset();
            steal(other);
        }
        return *this;
    }

    BasicSmallFn(const BasicSmallFn&) = delete;
    BasicSmallFn& operator=(const BasicSmallFn&) = delete;

    ~BasicSmallFn() { reset(); }

    /// Invoke. Calling an empty BasicSmallFn is a programming error.
    R operator()(Args... args) {
        assert(ops_ != nullptr && "BasicSmallFn: invoking empty callback");
        return ops_->invoke(buf_, std::forward<Args>(args)...);
    }

    explicit operator bool() const noexcept { return ops_ != nullptr; }

    /// Drop the stored callable (if any), leaving *this empty.
    void reset() noexcept {
        if (ops_ != nullptr) {
            ops_->destroy(buf_);
            ops_ = nullptr;
        }
    }

    /// True when the stored callable (if any) lives in the inline buffer —
    /// instrumentation for the allocation-regression tests.
    bool is_inline() const noexcept {
        return ops_ != nullptr && ops_->inline_storage;
    }

    /// Compile-time check that a callable type stays inline. Hot-path call
    /// sites static_assert this so a capture that grows past the budget is
    /// a build error, not a silent per-event heap allocation.
    template <typename D>
    static constexpr bool fits_inline() {
        return sizeof(D) <= kInlineSize &&
               alignof(D) <= alignof(std::max_align_t) &&
               std::is_nothrow_move_constructible_v<D>;
    }

  private:
    struct Ops {
        R (*invoke)(void*, Args&&...);
        /// Move-construct the callable into `dst` from `src`, destroying the
        /// `src` copy. Must not throw: relocation happens inside move ctors.
        void (*relocate)(void* dst, void* src) noexcept;
        void (*destroy)(void*) noexcept;
        bool inline_storage;
    };

    template <typename D>
    static constexpr Ops kInlineOps = {
        [](void* p, Args&&... args) -> R {
            return (*std::launder(reinterpret_cast<D*>(p)))(
                std::forward<Args>(args)...);
        },
        [](void* dst, void* src) noexcept {
            D* s = std::launder(reinterpret_cast<D*>(src));
            ::new (dst) D(std::move(*s));
            s->~D();
        },
        [](void* p) noexcept { std::launder(reinterpret_cast<D*>(p))->~D(); },
        true,
    };

    template <typename D>
    static constexpr Ops kHeapOps = {
        [](void* p, Args&&... args) -> R {
            return (**std::launder(reinterpret_cast<D**>(p)))(
                std::forward<Args>(args)...);
        },
        [](void* dst, void* src) noexcept {
            using P = D*;
            ::new (dst) P(*std::launder(reinterpret_cast<P*>(src)));
        },
        [](void* p) noexcept {
            delete *std::launder(reinterpret_cast<D**>(p));
        },
        false,
    };

    void steal(BasicSmallFn& other) noexcept {
        if (other.ops_ != nullptr) {
            ops_ = other.ops_;
            ops_->relocate(buf_, other.buf_);
            other.ops_ = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char buf_[kInlineSize];
    const Ops* ops_ = nullptr;
};

/// The scheduler's event callback: move-only `void()` with inline storage.
using SmallFn = BasicSmallFn<void()>;

}  // namespace st::sim
