#pragma once

#include <cassert>
#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace st::sim {

/// Move-only `void()` callable with small-buffer-optimised storage.
///
/// This is the scheduler's event callback type. The event hot path schedules
/// millions of tiny lambdas — `[this]`, `[this, cycle]`, `[this, i, fault]` —
/// whose captures fit in a few machine words; `std::function` heap-allocates
/// and type-erases through a copyable interface neither of which the kernel
/// needs. SmallFn stores any callable whose state fits `kInlineSize` bytes
/// (and is nothrow-move-constructible) inline in the event itself; larger or
/// throwing-move callables fall back to a single heap allocation.
///
/// Being move-only it also accepts captures `std::function` cannot
/// (e.g. `std::unique_ptr`), which models "this event owns its payload".
class SmallFn {
  public:
    /// Inline capture budget. Covers every callback the shipped models
    /// schedule (typically `this` + a couple of scalars) with room for a
    /// `std::function`-sized capture; measured against the repo's own call
    /// sites, nothing in the hot path spills to the heap.
    static constexpr std::size_t kInlineSize = 48;

    SmallFn() noexcept = default;
    SmallFn(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

    template <typename F, typename D = std::decay_t<F>,
              typename = std::enable_if_t<!std::is_same_v<D, SmallFn> &&
                                          std::is_invocable_r_v<void, D&>>>
    SmallFn(F&& f) {  // NOLINT(google-explicit-constructor)
        if constexpr (fits_inline<D>()) {
            ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
            ops_ = &kInlineOps<D>;
        } else {
            using P = D*;
            ::new (static_cast<void*>(buf_)) P(new D(std::forward<F>(f)));
            ops_ = &kHeapOps<D>;
        }
    }

    SmallFn(SmallFn&& other) noexcept { steal(other); }

    SmallFn& operator=(SmallFn&& other) noexcept {
        if (this != &other) {
            reset();
            steal(other);
        }
        return *this;
    }

    SmallFn(const SmallFn&) = delete;
    SmallFn& operator=(const SmallFn&) = delete;

    ~SmallFn() { reset(); }

    /// Invoke. Calling an empty SmallFn is a programming error.
    void operator()() {
        assert(ops_ != nullptr && "SmallFn: invoking empty callback");
        ops_->invoke(buf_);
    }

    explicit operator bool() const noexcept { return ops_ != nullptr; }

    /// Drop the stored callable (if any), leaving *this empty.
    void reset() noexcept {
        if (ops_ != nullptr) {
            ops_->destroy(buf_);
            ops_ = nullptr;
        }
    }

  private:
    struct Ops {
        void (*invoke)(void*);
        /// Move-construct the callable into `dst` from `src`, destroying the
        /// `src` copy. Must not throw: relocation happens inside move ctors.
        void (*relocate)(void* dst, void* src) noexcept;
        void (*destroy)(void*) noexcept;
    };

    template <typename D>
    static constexpr bool fits_inline() {
        return sizeof(D) <= kInlineSize &&
               alignof(D) <= alignof(std::max_align_t) &&
               std::is_nothrow_move_constructible_v<D>;
    }

    template <typename D>
    static constexpr Ops kInlineOps = {
        [](void* p) { (*std::launder(reinterpret_cast<D*>(p)))(); },
        [](void* dst, void* src) noexcept {
            D* s = std::launder(reinterpret_cast<D*>(src));
            ::new (dst) D(std::move(*s));
            s->~D();
        },
        [](void* p) noexcept { std::launder(reinterpret_cast<D*>(p))->~D(); },
    };

    template <typename D>
    static constexpr Ops kHeapOps = {
        [](void* p) { (**std::launder(reinterpret_cast<D**>(p)))(); },
        [](void* dst, void* src) noexcept {
            using P = D*;
            ::new (dst) P(*std::launder(reinterpret_cast<P*>(src)));
        },
        [](void* p) noexcept {
            delete *std::launder(reinterpret_cast<D**>(p));
        },
    };

    void steal(SmallFn& other) noexcept {
        if (other.ops_ != nullptr) {
            ops_ = other.ops_;
            ops_->relocate(buf_, other.buf_);
            other.ops_ = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char buf_[kInlineSize];
    const Ops* ops_ = nullptr;
};

}  // namespace st::sim
