#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace st::sim {

/// Minimal Value Change Dump (IEEE 1364 §18) writer.
///
/// Models register signals during elaboration, then report value changes as
/// simulation progresses; the writer emits a standard VCD stream viewable in
/// GTKWave. Used by `bench_fig2_waveforms` to regenerate the paper's Figure 2.
class VcdWriter {
  public:
    /// `timescale_ps` picoseconds per VCD time unit (1 → "1ps").
    explicit VcdWriter(std::ostream& out, std::string top_module = "soc");

    /// Finalizes the header (so a run that never reported a change still
    /// yields a well-formed file) and flushes the stream: a truncated or
    /// aborted run leaves a VCD readable up to its last change.
    ~VcdWriter();

    VcdWriter(const VcdWriter&) = delete;
    VcdWriter& operator=(const VcdWriter&) = delete;

    /// Register a signal before the first change is reported.
    /// Returns the handle used with `change()`.
    int add_signal(const std::string& name, unsigned width = 1);

    /// Finish the header. Called automatically on the first change.
    void finalize_header();

    /// Report a new value for a registered signal at time `t`.
    /// Times must be non-decreasing across calls.
    void change(int handle, std::uint64_t value, Time t);

  private:
    struct Signal {
        std::string name;
        unsigned width = 1;
        std::string id;  // VCD identifier code
        std::uint64_t last = ~0ull;
        bool ever_written = false;
    };

    void emit_value(const Signal& s, std::uint64_t value);

    std::ostream& out_;
    std::string top_;
    std::vector<Signal> signals_;
    bool header_done_ = false;
    Time current_time_ = kNever;  // kNever: no timestamp emitted yet
};

}  // namespace st::sim
