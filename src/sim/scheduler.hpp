#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/time.hpp"

namespace st::sim {

/// Event evaluation priority within one timestamp. Smaller runs first.
///
/// Priorities encode the two-phase clock-edge semantics (DESIGN.md §5):
/// at a given instant all clock edges fire, clocked processes sample their
/// inputs, then commit their new state, then combinational settling /
/// clock-gating decisions run last.
enum class Priority : int {
    kClockEdge = 0,   ///< clock edge bookkeeping, sample phase
    kCommit = 1,      ///< registered-state update phase
    kPostCommit = 2,  ///< clock-enable evaluation, gating decisions
    kDefault = 3,     ///< plain asynchronous events (handshakes, wires)
    kMonitor = 4,     ///< trace capture, checkers — observe settled state
};

/// Deterministic discrete-event scheduler.
///
/// Events are totally ordered by (time, priority, insertion sequence), so two
/// runs that schedule the same events in the same order replay identically —
/// the kernel itself contributes no nondeterminism. Model nondeterminism (the
/// subject of the paper) is represented as *data*: perturbed delay values fed
/// to the models, never hidden simulator state.
class Scheduler {
  public:
    using Callback = std::function<void()>;

    Scheduler() = default;
    Scheduler(const Scheduler&) = delete;
    Scheduler& operator=(const Scheduler&) = delete;

    /// Current simulation time.
    Time now() const { return now_; }

    /// Schedule `cb` at absolute time `t` (must be >= now()).
    void schedule_at(Time t, Priority p, Callback cb);

    /// Schedule `cb` `delay` picoseconds from now.
    void schedule_after(Time delay, Priority p, Callback cb) {
        schedule_at(now_ + delay, p, std::move(cb));
    }

    /// Schedule with default (asynchronous-event) priority.
    void schedule_after(Time delay, Callback cb) {
        schedule_after(delay, Priority::kDefault, std::move(cb));
    }

    /// Execute the single earliest event. Returns false if the queue is empty.
    bool step();

    /// Run until the queue is empty or simulated time would exceed `t_end`.
    /// Events at exactly `t_end` are executed. Returns events executed.
    std::uint64_t run_until(Time t_end);

    /// Run until the queue is empty or `max_events` executed.
    std::uint64_t run(std::uint64_t max_events = ~0ull);

    /// True when no event is pending — with stopped clocks this means the
    /// system is quiescent (the deadlock detector builds on this).
    bool quiescent() const { return queue_.empty(); }

    /// Time of the earliest pending event, or kNever when quiescent.
    Time next_event_time() const {
        return queue_.empty() ? kNever : queue_.top().t;
    }

    /// Total events executed since construction.
    std::uint64_t events_executed() const { return executed_; }

  private:
    struct Event {
        Time t = 0;
        int priority = 0;
        std::uint64_t seq = 0;
        Callback cb;
    };
    struct Later {
        bool operator()(const Event& a, const Event& b) const {
            if (a.t != b.t) return a.t > b.t;
            if (a.priority != b.priority) return a.priority > b.priority;
            return a.seq > b.seq;
        }
    };

    Time now_ = 0;
    std::uint64_t next_seq_ = 0;
    std::uint64_t executed_ = 0;
    std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace st::sim
