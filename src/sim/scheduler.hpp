#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/dispatch.hpp"
#include "sim/small_fn.hpp"
#include "sim/time.hpp"
#include "snap/state_io.hpp"

namespace st::sim {

/// Event evaluation priority within one timestamp. Smaller runs first.
///
/// Priorities encode the two-phase clock-edge semantics (DESIGN.md §5):
/// at a given instant all clock edges fire, clocked processes sample their
/// inputs, then commit their new state, then combinational settling /
/// clock-gating decisions run last.
enum class Priority : int {
    kClockEdge = 0,   ///< clock edge bookkeeping, sample phase
    kCommit = 1,      ///< registered-state update phase
    kPostCommit = 2,  ///< clock-enable evaluation, gating decisions
    kDefault = 3,     ///< plain asynchronous events (handshakes, wires)
    kMonitor = 4,     ///< trace capture, checkers — observe settled state
};

/// Optional provenance attached to an event for the race audit: the object
/// whose state the callback mutates (or delivers into) and a static label.
/// Untagged events are invisible to the audit.
struct EventTag {
    const void* actor = nullptr;
    const char* label = nullptr;
};

/// One same-slot collision found by the race audit: two events executed at
/// the same (time, priority) targeting the same actor. Their relative order
/// is observable by that actor, yet it is fixed only by insertion sequence —
/// exactly the class of hidden ordering the determinism argument forbids the
/// kernel to introduce (DESIGN.md §5).
struct RaceRecord {
    Time t = 0;
    int priority = 0;
    const void* actor = nullptr;
    std::string first;   ///< label of the earlier event
    std::string second;  ///< label of the later event
};

/// Deterministic discrete-event scheduler.
///
/// Events are totally ordered by (time, priority, insertion sequence), so two
/// runs that schedule the same events in the same order replay identically —
/// the kernel itself contributes no nondeterminism. Model nondeterminism (the
/// subject of the paper) is represented as *data*: perturbed delay values fed
/// to the models, never hidden simulator state.
///
/// **Hot path**: callbacks are stored in a move-only small-buffer type
/// (`SmallFn`, no heap allocation for the models' capture sizes) inside
/// pool-allocated event records. Ordering lives in `sim::DispatchCore` — the
/// (time, priority, seq) dispatch kernel shared with the gang engine's
/// lockstep front-end (`st::gang`) — whose packed 24-byte entries order
/// fixed-size keys only, so sift operations never move a callback, and
/// records return to a free list after execution: steady-state simulation
/// performs no allocation per event. The order is byte-for-byte the same
/// (time, priority, seq) total order as the original `std::priority_queue`
/// kernel; golden traces are unchanged.
///
/// A Scheduler is confined to one thread. Run-level parallelism lives in
/// `st::runner`, strictly *across* independent SoC instances, each owning a
/// private Scheduler (docs/PERF.md).
///
/// **Race audit**: with `set_race_audit(true)`, executed events that carry an
/// EventTag are grouped by (time, priority); two events in one group with the
/// same actor are recorded as a RaceRecord. The audit is an instrumentation
/// mode (off by default, near-zero cost when off) used by `st::lint` to
/// demonstrate that the shipped models never rely on insertion-sequence
/// tie-breaking.
class Scheduler {
  public:
    using Callback = SmallFn;

    Scheduler() = default;
    Scheduler(const Scheduler&) = delete;
    Scheduler& operator=(const Scheduler&) = delete;
    ~Scheduler();

    /// Current simulation time.
    Time now() const { return now_; }

    /// Schedule `cb` at absolute time `t` (must be >= now()). Returns the
    /// event's insertion sequence number — the tie-break key of the total
    /// order. Components that participate in snapshot/restore record it so
    /// the event can be re-armed in exactly its original slot (see rearm).
    std::uint64_t schedule_at(Time t, Priority p, Callback cb) {
        return schedule_at(t, p, EventTag{}, std::move(cb));
    }

    /// Schedule a tagged event (visible to the race audit).
    std::uint64_t schedule_at(Time t, Priority p, EventTag tag, Callback cb);

    /// Schedule `cb` `delay` picoseconds from now.
    std::uint64_t schedule_after(Time delay, Priority p, Callback cb) {
        return schedule_at(now_ + delay, p, std::move(cb));
    }

    std::uint64_t schedule_after(Time delay, Priority p, EventTag tag,
                                 Callback cb) {
        return schedule_at(now_ + delay, p, tag, std::move(cb));
    }

    /// Schedule with default (asynchronous-event) priority.
    std::uint64_t schedule_after(Time delay, Callback cb) {
        return schedule_after(delay, Priority::kDefault, std::move(cb));
    }

    std::uint64_t schedule_after(Time delay, EventTag tag, Callback cb) {
        return schedule_after(delay, Priority::kDefault, tag,
                              std::move(cb));
    }

    /// Execute the single earliest event. Returns false if the queue is empty.
    bool step();

    /// Run until the queue is empty or simulated time would exceed `t_end`.
    /// Events at exactly `t_end` are executed. Returns events executed.
    std::uint64_t run_until(Time t_end);

    /// Run until the queue is empty or `max_events` executed.
    std::uint64_t run(std::uint64_t max_events = ~0ull);

    /// True when no event is pending — with stopped clocks this means the
    /// system is quiescent (the deadlock detector builds on this).
    bool quiescent() const { return queue_.empty(); }

    /// Time of the earliest pending event, or kNever when quiescent.
    Time next_event_time() const {
        return queue_.empty() ? kNever : queue_.front().t;
    }

    /// Total events executed since construction.
    std::uint64_t events_executed() const { return executed_; }

    // --- cooperative stop ---
    /// Ask the current run loop to stop at the next event boundary. Safe to
    /// call from inside an executing callback (the streaming trace checker
    /// calls it the instant a run is classified divergent — the remaining
    /// cycles can no longer change the verdict). `run()` / `run_until()` and
    /// the Soc-level cycle loops check the flag before popping the next
    /// event; the event in flight always completes, so a stopped run still
    /// sits at a well-formed boundary. The flag is sticky until cleared.
    void request_stop() { stop_requested_ = true; }
    bool stop_requested() const { return stop_requested_; }
    void clear_stop_request() { stop_requested_ = false; }

    /// Instrumentation: total event records in the slab pool (pending + free).
    /// Stays bounded by the high-water mark of *concurrently pending* events —
    /// records are recycled across `run_until` calls, not reallocated — so a
    /// long run with shallow queues keeps this at one slab.
    std::size_t pool_capacity() const { return slabs_.size() * kSlabSize; }

    /// Slabs parked in the calling thread's recycle pool (instrumentation
    /// for soak tests). Destroyed Schedulers donate their slabs here and new
    /// ones on the same thread draw from it, so a sweep worker constructing
    /// one `Soc` per case stops hitting the allocator after its first case —
    /// per-run slab malloc/free was a cross-thread allocator contention
    /// point in parallel campaigns.
    static std::size_t tls_pooled_slabs();

    // --- fault injection (opt-in) ---
    /// Event-level fault surface used by the fuzz harness: when installed,
    /// every *tagged* event is offered to the interceptor just before its
    /// callback would run; returning false drops the event silently — the
    /// model of a transition lost on an asynchronous wire. Untagged events
    /// always execute, so the kernel's own bookkeeping cannot be faulted.
    ///
    /// Small-buffer type (same machinery as the event callbacks), so
    /// installing a fault plan — and consulting it per tagged event — stays
    /// on the allocation-free hot path of fault-injected campaigns.
    using Interceptor = BasicSmallFn<bool(const EventTag&, Time)>;
    void set_interceptor(Interceptor fn) { interceptor_ = std::move(fn); }

    /// Events dropped by the interceptor (not counted in events_executed()).
    std::uint64_t events_dropped() const { return dropped_; }

    // --- snapshot/restore ---
    /// True when no pending event shares the current timestamp — the only
    /// states in which a snapshot may be taken (mid-slot the two-phase
    /// clock-edge protocol is half-applied).
    bool at_slot_boundary() const {
        return queue_.empty() || queue_.front().t > now_;
    }

    /// Drop every pending event, recycling the records, and clear any stop
    /// request. Counters (now, seq, executed, dropped) are left as-is — the
    /// gang engine's lane reset calls this immediately before a restore,
    /// which overwrites them from the pristine image. The interceptor and
    /// race-audit configuration are wiring, not run state, and survive.
    void clear_pending();

    /// Execute every event scheduled at exactly now(). Behaviour-neutral:
    /// these events would run before anything else anyway, in this order.
    /// Returns events executed.
    std::uint64_t settle();

    /// Write the kernel's own state: counters plus the pending-event count.
    /// The pending events themselves are NOT serialized here — closures
    /// cannot be; instead every component records the (fire time, seq) of
    /// its in-flight events and re-arms them on restore. The count saved
    /// here cross-checks that no component forgot.
    ///
    /// `require_boundary = false` skips the slot-boundary precondition: only
    /// valid when nothing has executed yet (Soc::pristine_image — a freshly
    /// started system whose first edges sit at t=0 is still consistent,
    /// since no two-phase edge protocol can be half-applied).
    void save_state(snap::StateWriter& w, bool require_boundary = true) const;

    /// Begin a restore: load counters, then accept rearm() calls from the
    /// components' restore_state methods. schedule_at is rejected until
    /// end_restore() — restoring code must use rearm so ordering is exact.
    void begin_restore(snap::StateReader& r);

    /// Re-create one pending event during restore. `orig_seq` is the seq
    /// the event had in the saving run; staged events are replayed in
    /// orig_seq order, so every same-(time, priority) tie breaks exactly
    /// as it did before the snapshot.
    void rearm(Time t, Priority p, EventTag tag, std::uint64_t orig_seq,
               Callback cb);

    /// Finish a restore: verify the staged count matches the saved pending
    /// count (throws snap::SnapshotError otherwise) and push the staged
    /// events into the heap in orig_seq order.
    void end_restore();

    bool restoring() const { return restoring_; }

    // --- race audit ---
    /// Enable/disable the same-slot collision audit. Toggling clears the
    /// current group but keeps previously recorded races.
    void set_race_audit(bool on);
    bool race_audit() const { return audit_; }
    const std::vector<RaceRecord>& races() const { return races_; }
    void clear_races() { races_.clear(); }

  private:
    /// Pool-resident payload: everything the dispatch core does not need
    /// for ordering.
    struct Event {
        EventTag tag;
        Callback cb;
    };

    static constexpr std::size_t kSlabSize = 64;

    Event* acquire_event();
    void release_event(Event* ev);
    void audit_step(Time t, int priority, const EventTag& tag);

    /// The calling thread's slab recycle pool (see tls_pooled_slabs).
    static std::vector<std::unique_ptr<Event[]>>& slab_pool();

    Time now_ = 0;
    bool stop_requested_ = false;
    std::uint64_t next_seq_ = 0;
    std::uint64_t executed_ = 0;
    std::uint64_t dropped_ = 0;
    Interceptor interceptor_;

    // Restore staging (see begin_restore/rearm/end_restore).
    struct Staged {
        Time t = 0;
        Priority p = Priority::kDefault;
        EventTag tag;
        std::uint64_t orig_seq = 0;
        Callback cb;
    };
    bool restoring_ = false;
    std::uint64_t expected_pending_ = 0;
    std::vector<Staged> staged_;

    DispatchCore<Event*> queue_;
    // Slab pool: fixed-size chunks keep Event addresses stable (queue entries
    // point into them); the free list recycles records across the whole life
    // of the scheduler.
    std::vector<std::unique_ptr<Event[]>> slabs_;
    std::vector<Event*> free_;

    // Race-audit state: tagged members of the (time, priority) group
    // currently executing.
    struct GroupMember {
        const void* actor = nullptr;
        const char* label = nullptr;
    };
    bool audit_ = false;
    Time group_t_ = 0;
    int group_priority_ = -1;
    std::vector<GroupMember> group_;
    std::vector<RaceRecord> races_;
};

}  // namespace st::sim
