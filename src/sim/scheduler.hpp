#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace st::sim {

/// Event evaluation priority within one timestamp. Smaller runs first.
///
/// Priorities encode the two-phase clock-edge semantics (DESIGN.md §5):
/// at a given instant all clock edges fire, clocked processes sample their
/// inputs, then commit their new state, then combinational settling /
/// clock-gating decisions run last.
enum class Priority : int {
    kClockEdge = 0,   ///< clock edge bookkeeping, sample phase
    kCommit = 1,      ///< registered-state update phase
    kPostCommit = 2,  ///< clock-enable evaluation, gating decisions
    kDefault = 3,     ///< plain asynchronous events (handshakes, wires)
    kMonitor = 4,     ///< trace capture, checkers — observe settled state
};

/// Optional provenance attached to an event for the race audit: the object
/// whose state the callback mutates (or delivers into) and a static label.
/// Untagged events are invisible to the audit.
struct EventTag {
    const void* actor = nullptr;
    const char* label = nullptr;
};

/// One same-slot collision found by the race audit: two events executed at
/// the same (time, priority) targeting the same actor. Their relative order
/// is observable by that actor, yet it is fixed only by insertion sequence —
/// exactly the class of hidden ordering the determinism argument forbids the
/// kernel to introduce (DESIGN.md §5).
struct RaceRecord {
    Time t = 0;
    int priority = 0;
    const void* actor = nullptr;
    std::string first;   ///< label of the earlier event
    std::string second;  ///< label of the later event
};

/// Deterministic discrete-event scheduler.
///
/// Events are totally ordered by (time, priority, insertion sequence), so two
/// runs that schedule the same events in the same order replay identically —
/// the kernel itself contributes no nondeterminism. Model nondeterminism (the
/// subject of the paper) is represented as *data*: perturbed delay values fed
/// to the models, never hidden simulator state.
///
/// **Race audit**: with `set_race_audit(true)`, executed events that carry an
/// EventTag are grouped by (time, priority); two events in one group with the
/// same actor are recorded as a RaceRecord. The audit is an instrumentation
/// mode (off by default, near-zero cost when off) used by `st::lint` to
/// demonstrate that the shipped models never rely on insertion-sequence
/// tie-breaking.
class Scheduler {
  public:
    using Callback = std::function<void()>;

    Scheduler() = default;
    Scheduler(const Scheduler&) = delete;
    Scheduler& operator=(const Scheduler&) = delete;

    /// Current simulation time.
    Time now() const { return now_; }

    /// Schedule `cb` at absolute time `t` (must be >= now()).
    void schedule_at(Time t, Priority p, Callback cb) {
        schedule_at(t, p, EventTag{}, std::move(cb));
    }

    /// Schedule a tagged event (visible to the race audit).
    void schedule_at(Time t, Priority p, EventTag tag, Callback cb);

    /// Schedule `cb` `delay` picoseconds from now.
    void schedule_after(Time delay, Priority p, Callback cb) {
        schedule_at(now_ + delay, p, std::move(cb));
    }

    void schedule_after(Time delay, Priority p, EventTag tag, Callback cb) {
        schedule_at(now_ + delay, p, tag, std::move(cb));
    }

    /// Schedule with default (asynchronous-event) priority.
    void schedule_after(Time delay, Callback cb) {
        schedule_after(delay, Priority::kDefault, std::move(cb));
    }

    void schedule_after(Time delay, EventTag tag, Callback cb) {
        schedule_after(delay, Priority::kDefault, tag, std::move(cb));
    }

    /// Execute the single earliest event. Returns false if the queue is empty.
    bool step();

    /// Run until the queue is empty or simulated time would exceed `t_end`.
    /// Events at exactly `t_end` are executed. Returns events executed.
    std::uint64_t run_until(Time t_end);

    /// Run until the queue is empty or `max_events` executed.
    std::uint64_t run(std::uint64_t max_events = ~0ull);

    /// True when no event is pending — with stopped clocks this means the
    /// system is quiescent (the deadlock detector builds on this).
    bool quiescent() const { return queue_.empty(); }

    /// Time of the earliest pending event, or kNever when quiescent.
    Time next_event_time() const {
        return queue_.empty() ? kNever : queue_.top().t;
    }

    /// Total events executed since construction.
    std::uint64_t events_executed() const { return executed_; }

    // --- fault injection (opt-in) ---
    /// Event-level fault surface used by the fuzz harness: when installed,
    /// every *tagged* event is offered to the interceptor just before its
    /// callback would run; returning false drops the event silently — the
    /// model of a transition lost on an asynchronous wire. Untagged events
    /// always execute, so the kernel's own bookkeeping cannot be faulted.
    using Interceptor = std::function<bool(const EventTag&, Time)>;
    void set_interceptor(Interceptor fn) { interceptor_ = std::move(fn); }

    /// Events dropped by the interceptor (not counted in events_executed()).
    std::uint64_t events_dropped() const { return dropped_; }

    // --- race audit ---
    /// Enable/disable the same-slot collision audit. Toggling clears the
    /// current group but keeps previously recorded races.
    void set_race_audit(bool on);
    bool race_audit() const { return audit_; }
    const std::vector<RaceRecord>& races() const { return races_; }
    void clear_races() { races_.clear(); }

  private:
    struct Event {
        Time t = 0;
        int priority = 0;
        std::uint64_t seq = 0;
        EventTag tag;
        Callback cb;
    };
    struct Later {
        bool operator()(const Event& a, const Event& b) const {
            if (a.t != b.t) return a.t > b.t;
            if (a.priority != b.priority) return a.priority > b.priority;
            return a.seq > b.seq;
        }
    };

    void audit_step(const Event& ev);

    Time now_ = 0;
    std::uint64_t next_seq_ = 0;
    std::uint64_t executed_ = 0;
    std::uint64_t dropped_ = 0;
    Interceptor interceptor_;
    std::priority_queue<Event, std::vector<Event>, Later> queue_;

    // Race-audit state: tagged members of the (time, priority) group
    // currently executing.
    struct GroupMember {
        const void* actor = nullptr;
        const char* label = nullptr;
    };
    bool audit_ = false;
    Time group_t_ = 0;
    int group_priority_ = -1;
    std::vector<GroupMember> group_;
    std::vector<RaceRecord> races_;
};

}  // namespace st::sim
