#include "sim/vcd.hpp"

#include <stdexcept>

namespace st::sim {

namespace {
/// VCD identifier codes are short printable-ASCII strings.
std::string id_code(int index) {
    std::string id;
    int v = index;
    do {
        id.push_back(static_cast<char>('!' + v % 94));
        v /= 94;
    } while (v > 0);
    return id;
}
}  // namespace

VcdWriter::VcdWriter(std::ostream& out, std::string top_module)
    : out_(out), top_(std::move(top_module)) {}

VcdWriter::~VcdWriter() {
    finalize_header();
    out_.flush();
}

int VcdWriter::add_signal(const std::string& name, unsigned width) {
    if (header_done_) {
        throw std::logic_error("VcdWriter: add_signal after header finalized");
    }
    Signal s;
    s.name = name;
    s.width = width;
    s.id = id_code(static_cast<int>(signals_.size()));
    signals_.push_back(std::move(s));
    return static_cast<int>(signals_.size()) - 1;
}

void VcdWriter::finalize_header() {
    if (header_done_) return;
    out_ << "$date synchro-tokens simulation $end\n"
         << "$version st::sim VcdWriter $end\n"
         << "$timescale 1ps $end\n"
         << "$scope module " << top_ << " $end\n";
    for (const auto& s : signals_) {
        out_ << "$var wire " << s.width << ' ' << s.id << ' ' << s.name
             << " $end\n";
    }
    out_ << "$upscope $end\n$enddefinitions $end\n";
    header_done_ = true;
}

void VcdWriter::emit_value(const Signal& s, std::uint64_t value) {
    if (s.width == 1) {
        out_ << (value ? '1' : '0') << s.id << '\n';
    } else {
        out_ << 'b';
        bool leading = true;
        for (int bit = static_cast<int>(s.width) - 1; bit >= 0; --bit) {
            const bool b = (value >> bit) & 1;
            if (b) leading = false;
            if (!leading || bit == 0) out_ << (b ? '1' : '0');
        }
        out_ << ' ' << s.id << '\n';
    }
}

void VcdWriter::change(int handle, std::uint64_t value, Time t) {
    finalize_header();
    auto& s = signals_.at(static_cast<std::size_t>(handle));
    if (s.ever_written && s.last == value) return;
    if (current_time_ == kNever || t != current_time_) {
        out_ << '#' << t << '\n';
        current_time_ = t;
    }
    emit_value(s, value);
    s.last = value;
    s.ever_written = true;
}

}  // namespace st::sim
