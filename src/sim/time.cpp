#include "sim/time.hpp"

#include <cstdio>

namespace st::sim {

std::string format_time(Time t) {
    char buf[64];
    if (t == kNever) return "never";
    if (t < 1000) {
        std::snprintf(buf, sizeof buf, "%llu ps", static_cast<unsigned long long>(t));
    } else if (t < ns(1000)) {
        std::snprintf(buf, sizeof buf, "%.3f ns", static_cast<double>(t) / 1e3);
    } else if (t < us(1000)) {
        std::snprintf(buf, sizeof buf, "%.3f us", static_cast<double>(t) / 1e6);
    } else {
        std::snprintf(buf, sizeof buf, "%.3f ms", static_cast<double>(t) / 1e9);
    }
    return buf;
}

}  // namespace st::sim
