#pragma once

#include <cstdint>
#include <limits>
#include <string>

namespace st::sim {

/// Simulation time in picoseconds.
///
/// All model delays (clock periods, FIFO stage propagation, token-ring wire
/// delay, ...) are expressed in this unit. 64 bits of picoseconds covers
/// ~213 days of simulated time, far beyond any experiment in this repo.
using Time = std::uint64_t;

/// Sentinel meaning "no scheduled time" / "never happens".
inline constexpr Time kNever = std::numeric_limits<Time>::max();

/// Convenience constructors so model code reads in natural units.
constexpr Time ps(std::uint64_t v) { return v; }
constexpr Time ns(std::uint64_t v) { return v * 1000; }
constexpr Time us(std::uint64_t v) { return v * 1000 * 1000; }
constexpr Time ms(std::uint64_t v) { return v * 1000ull * 1000 * 1000; }

/// Scale a delay by a perturbation factor expressed in percent
/// (the paper perturbs delays to 50/75/150/200 % of nominal).
/// Rounds to nearest picosecond.
constexpr Time scale_percent(Time nominal, unsigned percent) {
    return (nominal * percent + 50) / 100;
}

/// Render a time as a human-readable string ("12.345 ns").
std::string format_time(Time t);

}  // namespace st::sim
