#include "workload/streaming.hpp"

#include <stdexcept>

namespace st::wl {

namespace {
std::uint64_t lfsr_step(std::uint64_t& s) {
    const bool lsb = s & 1;
    s >>= 1;
    if (lsb) s ^= 0xd800000000000000ull;
    return s;
}

std::vector<std::size_t> iota_ports(std::size_t n) {
    std::vector<std::size_t> v(n);
    for (std::size_t i = 0; i < n; ++i) v[i] = i;
    return v;
}
}  // namespace

StreamingSource::StreamingSource(std::uint64_t seed) : lfsr_(seed) {
    if (seed == 0) throw std::invalid_argument("StreamingSource: zero seed");
}

void StreamingSource::on_cycle(sb::SbContext& ctx) {
    if (!splitter_) {
        splitter_ = std::make_unique<core::LaneSplitter>(
            iota_ports(ctx.num_out()));
    }
    splitter_->offer(lfsr_step(lfsr_));
    ++generated_;
    splitter_->pump(ctx);
}

std::uint64_t StreamingSource::words_sent() const {
    return splitter_ ? splitter_->words_sent() : 0;
}

std::size_t StreamingSource::max_queue_depth() const {
    return splitter_ ? splitter_->max_queue_depth() : 0;
}

StreamingSink::StreamingSink(std::uint64_t seed) : expect_lfsr_(seed) {
    if (seed == 0) throw std::invalid_argument("StreamingSink: zero seed");
}

void StreamingSink::on_cycle(sb::SbContext& ctx) {
    if (!merger_) {
        merger_ = std::make_unique<core::LaneMerger>(iota_ports(ctx.num_in()));
    }
    merger_->pump(ctx);
    while (merger_->has_word()) {
        const Word got = merger_->pop();
        const Word want = lfsr_step(expect_lfsr_);
        if (got != want) ++errors_;
        ++consumed_;
    }
}

}  // namespace st::wl
