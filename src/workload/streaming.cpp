#include "workload/streaming.hpp"

#include <stdexcept>

namespace st::wl {

namespace {
std::uint64_t lfsr_step(std::uint64_t& s) {
    const bool lsb = s & 1;
    s >>= 1;
    if (lsb) s ^= 0xd800000000000000ull;
    return s;
}

std::vector<std::size_t> iota_ports(std::size_t n) {
    std::vector<std::size_t> v(n);
    for (std::size_t i = 0; i < n; ++i) v[i] = i;
    return v;
}
}  // namespace

StreamingSource::StreamingSource(std::uint64_t seed) : lfsr_(seed) {
    if (seed == 0) throw std::invalid_argument("StreamingSource: zero seed");
}

void StreamingSource::on_cycle(sb::SbContext& ctx) {
    if (!splitter_) {
        splitter_ = std::make_unique<core::LaneSplitter>(
            iota_ports(ctx.num_out()));
    }
    splitter_->offer(lfsr_step(lfsr_));
    ++generated_;
    splitter_->pump(ctx);
}

std::uint64_t StreamingSource::words_sent() const {
    return splitter_ ? splitter_->words_sent() : 0;
}

std::size_t StreamingSource::max_queue_depth() const {
    return splitter_ ? splitter_->max_queue_depth() : 0;
}

StreamingSink::StreamingSink(std::uint64_t seed) : expect_lfsr_(seed) {
    if (seed == 0) throw std::invalid_argument("StreamingSink: zero seed");
}

void StreamingSink::on_cycle(sb::SbContext& ctx) {
    if (!merger_) {
        merger_ = std::make_unique<core::LaneMerger>(iota_ports(ctx.num_in()));
    }
    merger_->pump(ctx);
    while (merger_->has_word()) {
        const Word got = merger_->pop();
        const Word want = lfsr_step(expect_lfsr_);
        if (got != want) ++errors_;
        ++consumed_;
    }
}

void StreamingSource::save_state(snap::StateWriter& w) const {
    w.begin_group("stream_src");
    w.begin("regs");
    w.u64(lfsr_);
    w.u64(generated_);
    w.b(splitter_ != nullptr);
    w.u64(splitter_ ? splitter_->lane_count() : 0);
    w.end();
    if (splitter_) splitter_->save_state(w);
    w.end();
}

void StreamingSource::restore_state(snap::StateReader& r) {
    r.enter("stream_src");
    r.enter("regs");
    lfsr_ = r.u64();
    generated_ = r.u64();
    const bool has = r.b();
    const std::uint64_t lanes = r.u64();
    r.leave();
    if (has) {
        splitter_ = std::make_unique<core::LaneSplitter>(
            iota_ports(static_cast<std::size_t>(lanes)));
        splitter_->restore_state(r);
    } else {
        splitter_.reset();
    }
    r.leave();
}

void StreamingSink::save_state(snap::StateWriter& w) const {
    w.begin_group("stream_sink");
    w.begin("regs");
    w.u64(expect_lfsr_);
    w.u64(consumed_);
    w.u64(errors_);
    w.b(merger_ != nullptr);
    w.u64(merger_ ? merger_->lane_count() : 0);
    w.end();
    if (merger_) merger_->save_state(w);
    w.end();
}

void StreamingSink::restore_state(snap::StateReader& r) {
    r.enter("stream_sink");
    r.enter("regs");
    expect_lfsr_ = r.u64();
    consumed_ = r.u64();
    errors_ = r.u64();
    const bool has = r.b();
    const std::uint64_t lanes = r.u64();
    r.leave();
    if (has) {
        merger_ = std::make_unique<core::LaneMerger>(
            iota_ports(static_cast<std::size_t>(lanes)));
        merger_->restore_state(r);
    } else {
        merger_.reset();
    }
    r.leave();
}

}  // namespace st::wl
