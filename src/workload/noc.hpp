#pragma once

#include <cstdint>
#include <deque>
#include <stdexcept>
#include <vector>

#include "sb/kernel.hpp"
#include "workload/router.hpp"

namespace st::wl {

/// Serializable routed-traffic node for generated NoC-scale topologies.
///
/// RouterKernel is the wiring-level router core, but its Config carries
/// opaque deliver/inject closures, so it cannot ride a `.stspec` file. This
/// kernel is the plain-data counterpart the `src/topo` generator emits: the
/// whole configuration is integers (coordinates, grid extent, seed,
/// injection cadence, per-port neighbour coordinates), so `sva::SpecDoc`
/// round-trips it byte-exactly and `to_spec` re-elaborates it.
///
/// Unlike RouterKernel, which backpressures by *not consuming*, this kernel
/// is store-and-forward: every visible input word is taken the cycle it
/// shows, routed, and parked in an internal per-output queue; each output
/// port drains one queued word per enabled cycle. The distinction is load-
/// bearing for chip-level determinism (DESIGN.md §5, docs/TOPOLOGY.md): a
/// refused word would back up the channel FIFO until the producer's tail
/// handshake stalls, and a stalled handshake resolves at the *consumer's*
/// wall-clock pace — leaking physical delay into the producer's local-cycle
/// trace. Queued words, by contrast, are pure kernel state. Transit drains
/// in fixed port order ahead of local injection (RouterKernel's priority).
/// Packets use the wl::Packet word layout. Deliveries fold into a running
/// CRC-32 and injections draw from a seeded splitmix64 stream, so — exactly
/// like TrafficKernel — the signature is a determinism witness: one word
/// delivered at a different cycle permanently scrambles it.
class NocKernel final : public sb::Kernel {
  public:
    struct Config {
        enum class Mode : std::uint8_t {
            kMesh = 0,   ///< dimension-ordered (XY) routing
            kTorus = 1,  ///< XY with wraparound-shortest direction choice
            kStar = 2,   ///< hub-and-spoke: exact-match at the hub
        };

        Mode mode = Mode::kMesh;
        std::uint8_t x = 0;       ///< own tile coordinates
        std::uint8_t y = 0;
        std::uint8_t width = 1;   ///< grid extent (mesh/torus dest mapping)
        std::uint8_t height = 1;
        std::uint16_t nodes = 1;  ///< total SB count (destination universe)
        std::uint64_t seed = 1;   ///< injection stream seed (non-zero)
        /// Local cycles between injection attempts; 0 disables injection
        /// (pure transit node).
        std::uint32_t inject_period = 0;
        /// Neighbour coordinates per output port, in port order. Port order
        /// is the generator's channel order for this SB (east, west, north,
        /// south on grids; leaf order at a star hub).
        struct OutPort {
            std::uint8_t x = 0;
            std::uint8_t y = 0;
            bool operator==(const OutPort&) const = default;
        };
        std::vector<OutPort> ports;
    };

    /// Destination-index -> coordinates mapping shared by the generator and
    /// the kernel's injection draw. Grid modes enumerate row-major; star
    /// mode places the hub (index 0) at (0,0) and leaf i on a 16-wide
    /// apron starting at y=1, so leaf coordinates never collide with the
    /// hub's for any supported size.
    static constexpr std::uint8_t kStarRow = 16;
    static Config::OutPort node_coords(Config::Mode mode, std::uint8_t width,
                                       std::size_t index) {
        Config::OutPort c;
        if (mode == Config::Mode::kStar) {
            if (index == 0) return c;  // hub at (0,0)
            const std::size_t leaf = index - 1;
            c.x = static_cast<std::uint8_t>(leaf % kStarRow);
            c.y = static_cast<std::uint8_t>(1 + leaf / kStarRow);
            return c;
        }
        c.x = static_cast<std::uint8_t>(index % width);
        c.y = static_cast<std::uint8_t>(index / width);
        return c;
    }

    explicit NocKernel(Config cfg);

    void on_cycle(sb::SbContext& ctx) override;

    /// Output port for a packet not addressed here (kNone when no port can
    /// make progress — the packet is absorbed locally). Exposed for tests.
    std::size_t route(Word w) const;

    std::uint64_t injected() const { return injected_; }
    std::uint64_t forwarded() const { return forwarded_; }
    std::uint64_t delivered() const { return delivered_; }
    /// Words parked in internal output queues (store-and-forward backlog).
    std::uint64_t queued() const;
    std::uint32_t signature() const { return crc_; }
    const Config& config() const { return cfg_; }

    /// Scan image layout: 6 fixed registers, then the output queues
    /// ([port count] then per port [length, words...]). Images of 6 or
    /// fewer words update a register prefix and leave the queues alone.
    std::vector<std::uint64_t> scan_state() const override;
    void load_state(const std::vector<std::uint64_t>& image) override;

  private:
    std::uint64_t rng_next();
    Word make_packet();
    void accept(Word w);

    Config cfg_;
    std::size_t self_index_ = 0;  ///< derived from coords; not state
    std::uint64_t rng_state_;
    std::uint64_t phase_ = 0;
    std::uint64_t injected_ = 0;
    std::uint64_t forwarded_ = 0;
    std::uint64_t delivered_ = 0;
    std::uint32_t crc_ = 0xffffffffu;
    std::vector<std::deque<Word>> out_queues_;  ///< one per output port
};

}  // namespace st::wl
