#include "workload/noc.hpp"

#include <algorithm>
#include <limits>

#include "sb/kernels/transforms.hpp"

namespace st::wl {

namespace {

constexpr std::size_t kNone = RouterKernel::kNone;

/// Manhattan distance with optional wraparound per axis (torus).
std::uint32_t axis_dist(std::uint8_t a, std::uint8_t b, std::uint8_t extent,
                        bool wrap) {
    const std::uint32_t d = a > b ? a - b : b - a;
    if (!wrap || extent == 0) return d;
    return std::min(d, extent - d);
}

}  // namespace

NocKernel::NocKernel(Config cfg) : cfg_(std::move(cfg)), rng_state_(cfg_.seed) {
    if (cfg_.seed == 0) throw std::invalid_argument("NocKernel: zero seed");
    if (cfg_.nodes == 0) throw std::invalid_argument("NocKernel: zero nodes");
    if (cfg_.mode != Config::Mode::kStar &&
        (cfg_.width == 0 || cfg_.height == 0)) {
        throw std::invalid_argument("NocKernel: empty grid");
    }
    for (std::size_t i = 0; i < cfg_.nodes; ++i) {
        const auto c = node_coords(cfg_.mode, cfg_.width, i);
        if (c.x == cfg_.x && c.y == cfg_.y) {
            self_index_ = i;
            break;
        }
    }
    out_queues_.resize(cfg_.ports.size());
}

std::uint64_t NocKernel::rng_next() {
    // splitmix64 (same core as sim::Rng): one u64 of state, trivially
    // snapshot-able through the scan image.
    std::uint64_t z = (rng_state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

Word NocKernel::make_packet() {
    // Uniform destination over every node but this one: draw in
    // [0, nodes-1) and skip self. The modulo bias over <= 65535 nodes is
    // irrelevant for traffic shaping and keeps the draw single-step.
    std::size_t dest = static_cast<std::size_t>(
        rng_next() % (cfg_.nodes > 1 ? cfg_.nodes - 1 : 1));
    if (dest >= self_index_) ++dest;
    const auto c = node_coords(cfg_.mode, cfg_.width, dest);
    return Packet::make(c.x, c.y, rng_next() & 0x0000ffffffffffffull);
}

std::size_t NocKernel::route(Word w) const {
    const std::uint8_t dx = Packet::dest_x(w);
    const std::uint8_t dy = Packet::dest_y(w);
    if (cfg_.mode == Config::Mode::kStar) {
        // Hub: the destination leaf's own port matches exactly. Leaf: the
        // single uplink (port 0) — the hub is often *farther* from the
        // destination than the leaf is, so the greedy metric below would
        // wrongly refuse it.
        for (std::size_t p = 0; p < cfg_.ports.size(); ++p) {
            if (cfg_.ports[p].x == dx && cfg_.ports[p].y == dy) return p;
        }
        if ((cfg_.x != 0 || cfg_.y != 0) && !cfg_.ports.empty()) return 0;
        return kNone;
    }
    const bool wrap = cfg_.mode == Config::Mode::kTorus;
    // Greedy minimal-distance step with lowest-port tie-break. The
    // generator emits grid ports in east, west, north, south order, which
    // makes this exactly RouterKernel's dimension-ordered (XY) policy on a
    // mesh: a correct-direction x move and a correct-direction y move tie
    // on remaining distance and the x port wins by index. On a torus the
    // wrap metric picks the shorter way round each axis.
    std::uint32_t best_dist = std::numeric_limits<std::uint32_t>::max();
    std::size_t best = kNone;
    const std::uint32_t here =
        axis_dist(cfg_.x, dx, cfg_.width, wrap) +
        axis_dist(cfg_.y, dy, cfg_.height, wrap);
    for (std::size_t p = 0; p < cfg_.ports.size(); ++p) {
        const auto& n = cfg_.ports[p];
        const std::uint32_t d = axis_dist(n.x, dx, cfg_.width, wrap) +
                                axis_dist(n.y, dy, cfg_.height, wrap);
        if (d < here && d < best_dist) {
            best_dist = d;
            best = p;
        }
    }
    return best;
}

void NocKernel::accept(Word w) {
    if (Packet::dest_x(w) == cfg_.x && Packet::dest_y(w) == cfg_.y) {
        crc_ = sb::Crc32Kernel::update(crc_, w);
        ++delivered_;
        return;
    }
    const std::size_t port = route(w);
    if (port == kNone) {
        // No port makes progress (mis-addressed packet on a degenerate
        // shape): absorb it rather than queue it forever.
        crc_ = sb::Crc32Kernel::update(crc_, w);
        ++delivered_;
        return;
    }
    out_queues_[port].push_back(w);
}

void NocKernel::on_cycle(sb::SbContext& ctx) {
    // Ingest every visible word unconditionally — the store-and-forward
    // contract. Leaving a word in the channel FIFO would tie its drain to
    // the producer's wall-clock handshake pace instead of this SB's cycle
    // count.
    for (std::size_t i = 0; i < ctx.num_in(); ++i) {
        if (ctx.in(i).has_data()) accept(ctx.in(i).take());
    }
    ++phase_;
    if (cfg_.inject_period != 0 && cfg_.nodes > 1 &&
        phase_ % cfg_.inject_period == 0) {
        accept(make_packet());
        ++injected_;
    }
    // Drain one queued word per output per enabled cycle, fixed port order
    // — RouterKernel's deterministic priority. Transit queued ahead of the
    // same-cycle injection above, because accept() appends.
    for (std::size_t p = 0; p < out_queues_.size(); ++p) {
        if (out_queues_[p].empty()) continue;
        auto& out = ctx.out(p);
        if (!out.can_push()) continue;
        out.push(out_queues_[p].front());
        out_queues_[p].pop_front();
        ++forwarded_;
    }
}

std::uint64_t NocKernel::queued() const {
    std::uint64_t total = 0;
    for (const auto& q : out_queues_) total += q.size();
    return total;
}

std::vector<std::uint64_t> NocKernel::scan_state() const {
    std::vector<std::uint64_t> image = {rng_state_, phase_,      injected_,
                                        forwarded_, delivered_, crc_};
    image.push_back(out_queues_.size());
    for (const auto& q : out_queues_) {
        image.push_back(q.size());
        image.insert(image.end(), q.begin(), q.end());
    }
    return image;
}

void NocKernel::load_state(const std::vector<std::uint64_t>& image) {
    if (image.size() > 0) rng_state_ = image[0];
    if (image.size() > 1) phase_ = image[1];
    if (image.size() > 2) injected_ = image[2];
    if (image.size() > 3) forwarded_ = image[3];
    if (image.size() > 4) delivered_ = image[4];
    if (image.size() > 5) crc_ = static_cast<std::uint32_t>(image[5]);
    if (image.size() <= 6) return;  // register prefix only; queues untouched
    std::size_t pos = 6;
    if (image[pos] != out_queues_.size()) {
        throw std::invalid_argument("NocKernel: image port count mismatch");
    }
    ++pos;
    std::vector<std::deque<Word>> queues(out_queues_.size());
    for (auto& q : queues) {
        if (pos >= image.size()) {
            throw std::invalid_argument("NocKernel: truncated queue image");
        }
        const std::uint64_t len = image[pos++];
        if (len > image.size() - pos) {
            throw std::invalid_argument("NocKernel: truncated queue image");
        }
        q.assign(image.begin() + static_cast<std::ptrdiff_t>(pos),
                 image.begin() + static_cast<std::ptrdiff_t>(pos + len));
        pos += len;
    }
    if (pos != image.size()) {
        throw std::invalid_argument("NocKernel: image too long");
    }
    out_queues_ = std::move(queues);
}

}  // namespace st::wl
