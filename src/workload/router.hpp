#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <optional>
#include <vector>

#include "sb/kernel.hpp"

namespace st::wl {

/// Packet helpers for the NoC workload: destination coordinates ride the
/// top bytes of the word, payload in the rest.
struct Packet {
    static Word make(std::uint8_t dest_x, std::uint8_t dest_y, Word payload) {
        return (static_cast<Word>(dest_x) << 56) |
               (static_cast<Word>(dest_y) << 48) |
               (payload & 0x0000ffffffffffffull);
    }
    static std::uint8_t dest_x(Word w) { return static_cast<std::uint8_t>(w >> 56); }
    static std::uint8_t dest_y(Word w) { return static_cast<std::uint8_t>(w >> 48); }
    static Word payload(Word w) { return w & 0x0000ffffffffffffull; }
};

/// Dimension-ordered (XY) mesh router core: a synchronous block that
/// forwards packets between its neighbour channels, delivers packets
/// addressed to itself, and optionally injects locally generated traffic.
/// Backpressure is by *not consuming*: a packet whose output port is full
/// stays in the input latch, stalling that input deterministically.
class RouterKernel final : public sb::Kernel {
  public:
    static constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();

    struct Config {
        std::uint8_t x = 0;
        std::uint8_t y = 0;
        /// Output port index per direction (kNone when the edge is absent).
        std::size_t out_east = kNone;
        std::size_t out_west = kNone;
        std::size_t out_north = kNone;  ///< toward smaller y
        std::size_t out_south = kNone;  ///< toward larger y
        /// Local sink for packets addressed to this tile.
        std::function<void(Word)> deliver;
        /// Per-cycle local source (return nullopt when idle).
        std::function<std::optional<Word>()> inject;
    };

    explicit RouterKernel(Config cfg) : cfg_(std::move(cfg)) {}

    void on_cycle(sb::SbContext& ctx) override;

    std::uint64_t forwarded() const { return forwarded_; }
    std::uint64_t delivered() const { return delivered_; }
    std::uint64_t injected() const { return injected_; }

    /// The stalled-injection latch is state the scan image does not carry.
    void save_state(snap::StateWriter& w) const override {
        w.begin("router");
        w.u64(forwarded_);
        w.u64(delivered_);
        w.u64(injected_);
        w.b(pending_inject_.has_value());
        w.u64(pending_inject_.value_or(0));
        w.end();
    }
    void restore_state(snap::StateReader& r) override {
        r.enter("router");
        forwarded_ = r.u64();
        delivered_ = r.u64();
        injected_ = r.u64();
        const bool has = r.b();
        const Word v = r.u64();
        pending_inject_ = has ? std::optional<Word>(v) : std::nullopt;
        r.leave();
    }

  private:
    /// XY routing decision; kNone means "this tile".
    std::size_t route(Word w) const;
    bool try_emit(sb::SbContext& ctx, Word w);

    Config cfg_;
    std::uint64_t forwarded_ = 0;
    std::uint64_t delivered_ = 0;
    std::uint64_t injected_ = 0;
    std::optional<Word> pending_inject_;
};

}  // namespace st::wl
