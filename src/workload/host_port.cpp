#include "workload/host_port.hpp"

namespace st::wl {

std::optional<Word> HostPortKernel::host_recv() {
    if (from_soc_.empty()) return std::nullopt;
    const Word w = from_soc_.front();
    from_soc_.pop_front();
    return w;
}

void HostPortKernel::on_cycle(sb::SbContext& ctx) {
    if (ctx.num_out() > 0 && !to_soc_.empty() && ctx.out(0).can_push()) {
        ctx.out(0).push(to_soc_.front());
        to_soc_.pop_front();
        ++words_out_;
    }
    for (std::size_t i = 0; i < ctx.num_in(); ++i) {
        if (ctx.in(i).has_data()) {
            from_soc_.push_back(ctx.in(i).take());
            ++words_in_;
        }
    }
}

}  // namespace st::wl
