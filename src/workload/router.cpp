#include "workload/router.hpp"

namespace st::wl {

std::size_t RouterKernel::route(Word w) const {
    const auto dx = Packet::dest_x(w);
    const auto dy = Packet::dest_y(w);
    if (dx > cfg_.x) return cfg_.out_east;
    if (dx < cfg_.x) return cfg_.out_west;
    if (dy > cfg_.y) return cfg_.out_south;
    if (dy < cfg_.y) return cfg_.out_north;
    return kNone;  // addressed here
}

bool RouterKernel::try_emit(sb::SbContext& ctx, Word w) {
    const std::size_t port = route(w);
    if (port == kNone) {
        if (cfg_.deliver) cfg_.deliver(w);
        ++delivered_;
        return true;
    }
    auto& out = ctx.out(port);
    if (!out.can_push()) return false;
    out.push(w);
    ++forwarded_;
    return true;
}

void RouterKernel::on_cycle(sb::SbContext& ctx) {
    // Transit traffic first (ports in fixed order: deterministic priority).
    for (std::size_t i = 0; i < ctx.num_in(); ++i) {
        if (!ctx.in(i).has_data()) continue;
        const Word w = ctx.in(i).peek();
        if (try_emit(ctx, w)) ctx.in(i).take();
        // else: leave it latched; the input stalls this cycle.
    }
    // Local injection last (transit has priority, a common NoC policy).
    if (!pending_inject_ && cfg_.inject) pending_inject_ = cfg_.inject();
    if (pending_inject_ && try_emit(ctx, *pending_inject_)) {
        ++injected_;
        pending_inject_.reset();
    }
}

}  // namespace st::wl
