#pragma once

#include <cstdint>
#include <deque>
#include <optional>

#include "sb/kernel.hpp"

namespace st::wl {

/// Kernel of an I/O SB (paper §4: "one or more SBs are designated as I/O
/// SBs. These SBs are synchronized to and communicate with the environment
/// (a board or a tester) without any intervening wrapper logic").
///
/// The environment side is a pair of host-visible queues with no handshake
/// wrapper; the SoC side uses the SB's normal channel ports. Everything the
/// host observes is cycle-deterministic because the SoC side is.
class HostPortKernel final : public sb::Kernel {
  public:
    /// Environment -> SoC: queue a word for transmission on output port 0.
    void host_send(Word w) { to_soc_.push_back(w); }

    /// SoC -> environment: pop the next received word, if any.
    std::optional<Word> host_recv();

    std::size_t tx_backlog() const { return to_soc_.size(); }
    std::size_t rx_available() const { return from_soc_.size(); }
    std::uint64_t words_in() const { return words_in_; }
    std::uint64_t words_out() const { return words_out_; }

    void on_cycle(sb::SbContext& ctx) override;

    /// Host-visible queues are variable-length state outside the scan image.
    void save_state(snap::StateWriter& w) const override {
        w.begin("host_port");
        w.u64(words_in_);
        w.u64(words_out_);
        w.u64(to_soc_.size());
        for (const auto v : to_soc_) w.u64(v);
        w.u64(from_soc_.size());
        for (const auto v : from_soc_) w.u64(v);
        w.end();
    }
    void restore_state(snap::StateReader& r) override {
        r.enter("host_port");
        words_in_ = r.u64();
        words_out_ = r.u64();
        const std::uint64_t nt = r.u64();
        to_soc_.clear();
        for (std::uint64_t i = 0; i < nt; ++i) to_soc_.push_back(r.u64());
        const std::uint64_t nf = r.u64();
        from_soc_.clear();
        for (std::uint64_t i = 0; i < nf; ++i) from_soc_.push_back(r.u64());
        r.leave();
    }

  private:
    std::deque<Word> to_soc_;
    std::deque<Word> from_soc_;
    std::uint64_t words_in_ = 0;
    std::uint64_t words_out_ = 0;
};

}  // namespace st::wl
