#pragma once

#include <cstdint>
#include <deque>
#include <optional>

#include "sb/kernel.hpp"

namespace st::wl {

/// Kernel of an I/O SB (paper §4: "one or more SBs are designated as I/O
/// SBs. These SBs are synchronized to and communicate with the environment
/// (a board or a tester) without any intervening wrapper logic").
///
/// The environment side is a pair of host-visible queues with no handshake
/// wrapper; the SoC side uses the SB's normal channel ports. Everything the
/// host observes is cycle-deterministic because the SoC side is.
class HostPortKernel final : public sb::Kernel {
  public:
    /// Environment -> SoC: queue a word for transmission on output port 0.
    void host_send(Word w) { to_soc_.push_back(w); }

    /// SoC -> environment: pop the next received word, if any.
    std::optional<Word> host_recv();

    std::size_t tx_backlog() const { return to_soc_.size(); }
    std::size_t rx_available() const { return from_soc_.size(); }
    std::uint64_t words_in() const { return words_in_; }
    std::uint64_t words_out() const { return words_out_; }

    void on_cycle(sb::SbContext& ctx) override;

  private:
    std::deque<Word> to_soc_;
    std::deque<Word> from_soc_;
    std::uint64_t words_in_ = 0;
    std::uint64_t words_out_ = 0;
};

}  // namespace st::wl
