#include "workload/traffic.hpp"

#include <algorithm>
#include <stdexcept>

#include "sb/kernels/transforms.hpp"

namespace st::wl {

TrafficKernel::TrafficKernel(std::uint64_t seed) : lfsr_(seed) {
    if (seed == 0) throw std::invalid_argument("TrafficKernel: zero seed");
}

std::uint64_t TrafficKernel::lfsr_step() {
    const bool lsb = lfsr_ & 1;
    lfsr_ >>= 1;
    if (lsb) lfsr_ ^= 0xd800000000000000ull;
    return lfsr_;
}

void TrafficKernel::on_cycle(sb::SbContext& ctx) {
    for (std::size_t i = 0; i < ctx.num_out(); ++i) {
        if (ctx.out(i).can_push()) {
            ctx.out(i).push(lfsr_step());
            ++emitted_;
        }
    }
    for (std::size_t i = 0; i < ctx.num_in(); ++i) {
        if (ctx.in(i).has_data()) {
            crc_ = sb::Crc32Kernel::update(crc_, ctx.in(i).take());
            ++consumed_;
        }
    }
}

std::vector<std::uint64_t> TrafficKernel::scan_state() const {
    return {lfsr_, emitted_, consumed_, crc_};
}

void TrafficKernel::load_state(const std::vector<std::uint64_t>& image) {
    if (image.size() > 4) {
        throw std::invalid_argument("TrafficKernel: image too long");
    }
    if (image.size() > 0) lfsr_ = image[0];
    if (image.size() > 1) emitted_ = image[1];
    if (image.size() > 2) consumed_ = image[2];
    if (image.size() > 3) crc_ = static_cast<std::uint32_t>(image[3]);
}

BurstTrafficKernel::BurstTrafficKernel(std::uint64_t seed,
                                       std::uint32_t on_cycles,
                                       std::uint32_t off_cycles)
    : lfsr_(seed), on_cycles_(on_cycles), off_cycles_(off_cycles) {
    if (seed == 0) throw std::invalid_argument("BurstTrafficKernel: zero seed");
    if (on_cycles == 0) {
        throw std::invalid_argument("BurstTrafficKernel: on_cycles must be >= 1");
    }
}

void BurstTrafficKernel::on_cycle(sb::SbContext& ctx) {
    const std::uint64_t period = on_cycles_ + off_cycles_;
    const bool bursting = (phase_++ % period) < on_cycles_;
    if (!bursting) return;
    for (std::size_t i = 0; i < ctx.num_out(); ++i) {
        if (ctx.out(i).can_push()) {
            const bool lsb = lfsr_ & 1;
            lfsr_ >>= 1;
            if (lsb) lfsr_ ^= 0xd800000000000000ull;
            ctx.out(i).push(lfsr_);
            ++emitted_;
        }
    }
}

RequesterKernel::RequesterKernel(std::function<Word(Word)> expected,
                                 std::uint32_t window)
    : expected_(std::move(expected)), window_(window) {
    if (window_ == 0) {
        throw std::invalid_argument("RequesterKernel: window must be >= 1");
    }
}

void RequesterKernel::on_cycle(sb::SbContext& ctx) {
    if (ctx.num_in() > 0 && ctx.in(0).has_data()) {
        const Word resp = ctx.in(0).take();
        if (!outstanding_.empty()) {
            const Word req = outstanding_.front();
            outstanding_.erase(outstanding_.begin());
            if (resp == expected_(req)) {
                ++ok_;
            } else {
                ++bad_;
            }
        } else {
            ++bad_;  // unsolicited response
        }
    }
    if (ctx.num_out() > 0 && outstanding_.size() < window_ &&
        ctx.out(0).can_push()) {
        const Word req = next_req_++;
        ctx.out(0).push(req);
        outstanding_.push_back(req);
        ++sent_;
    }
}

}  // namespace st::wl
