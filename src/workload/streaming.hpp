#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sb/kernel.hpp"
#include "synchro/wide_channel.hpp"

namespace st::wl {

/// Full-rate producer for widened channels: generates exactly one LFSR word
/// per local cycle into a LaneSplitter across all output ports. With enough
/// lanes (>= (H+R)/H), the channel sustains the full word-per-cycle rate —
/// the paper's STARI-parity configuration.
class StreamingSource final : public sb::Kernel {
  public:
    explicit StreamingSource(std::uint64_t seed);

    void on_cycle(sb::SbContext& ctx) override;

    std::uint64_t words_generated() const { return generated_; }
    std::uint64_t words_sent() const;
    std::size_t max_queue_depth() const;

    std::vector<std::uint64_t> scan_state() const override {
        return {lfsr_, generated_};
    }

    /// The splitter queue is state the scan image does not carry; it is
    /// rebuilt (lane count saved) and refilled on restore.
    void save_state(snap::StateWriter& w) const override;
    void restore_state(snap::StateReader& r) override;

  private:
    std::uint64_t lfsr_;
    std::uint64_t generated_ = 0;
    std::unique_ptr<core::LaneSplitter> splitter_;  // built on first cycle
};

/// Full-rate consumer: reassembles the lanes and verifies the exact LFSR
/// sequence (any loss, duplication or reordering is counted).
class StreamingSink final : public sb::Kernel {
  public:
    explicit StreamingSink(std::uint64_t seed);

    void on_cycle(sb::SbContext& ctx) override;

    std::uint64_t words_consumed() const { return consumed_; }
    std::uint64_t sequence_errors() const { return errors_; }

    void save_state(snap::StateWriter& w) const override;
    void restore_state(snap::StateReader& r) override;

  private:
    std::uint64_t expect_lfsr_;
    std::uint64_t consumed_ = 0;
    std::uint64_t errors_ = 0;
    std::unique_ptr<core::LaneMerger> merger_;
};

}  // namespace st::wl
