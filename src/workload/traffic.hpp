#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <vector>

#include "sb/kernel.hpp"
#include "sb/kernels/transforms.hpp"

namespace st::wl {

/// Bidirectional streaming traffic core: emits an LFSR word into every output
/// port that can accept one and folds every consumed word into a running
/// CRC-32. The CRC makes the kernel a determinism witness — a single input
/// word delivered at a different cycle (hence in a different order relative
/// to other ports) permanently scrambles the signature.
class TrafficKernel final : public sb::Kernel {
  public:
    explicit TrafficKernel(std::uint64_t seed);

    void on_cycle(sb::SbContext& ctx) override;

    std::vector<std::uint64_t> scan_state() const override;
    void load_state(const std::vector<std::uint64_t>& image) override;

    std::uint64_t words_emitted() const { return emitted_; }
    std::uint64_t words_consumed() const { return consumed_; }
    std::uint32_t signature() const { return crc_; }

  private:
    std::uint64_t lfsr_step();

    std::uint64_t lfsr_;
    std::uint64_t emitted_ = 0;
    std::uint64_t consumed_ = 0;
    std::uint32_t crc_ = 0xffffffffu;
};

/// Bursty producer: emits for `on_cycles`, idles for `off_cycles`, repeats.
/// Models the "different dataflow profiles" the paper claims synchro-tokens
/// parameterization can be tuned for.
class BurstTrafficKernel final : public sb::Kernel {
  public:
    BurstTrafficKernel(std::uint64_t seed, std::uint32_t on_cycles,
                       std::uint32_t off_cycles);

    void on_cycle(sb::SbContext& ctx) override;

    std::uint64_t words_emitted() const { return emitted_; }

    std::vector<std::uint64_t> scan_state() const override {
        return {lfsr_, phase_, emitted_};
    }
    void load_state(const std::vector<std::uint64_t>& image) override {
        if (image.size() > 3) {
            throw std::invalid_argument("BurstTrafficKernel: image too long");
        }
        if (image.size() > 0) lfsr_ = image[0];
        if (image.size() > 1) phase_ = image[1];
        if (image.size() > 2) emitted_ = image[2];
    }

  private:
    std::uint64_t lfsr_;
    std::uint32_t on_cycles_;
    std::uint32_t off_cycles_;
    std::uint64_t phase_ = 0;
    std::uint64_t emitted_ = 0;
};

/// Request/response initiator: keeps up to `window` requests outstanding on
/// output 0, consumes responses on input 0, and verifies each response equals
/// `expected(request)`. Models low-bandwidth control-plane dataflow.
class RequesterKernel final : public sb::Kernel {
  public:
    RequesterKernel(std::function<Word(Word)> expected, std::uint32_t window);

    void on_cycle(sb::SbContext& ctx) override;

    std::uint64_t requests_sent() const { return sent_; }
    std::uint64_t responses_ok() const { return ok_; }
    std::uint64_t responses_bad() const { return bad_; }

    /// The outstanding-request window is variable-length state the scan
    /// image does not carry.
    void save_state(snap::StateWriter& w) const override {
        w.begin("requester");
        w.u64(next_req_);
        w.u64(sent_);
        w.u64(ok_);
        w.u64(bad_);
        w.u64(outstanding_.size());
        for (const auto v : outstanding_) w.u64(v);
        w.end();
    }
    void restore_state(snap::StateReader& r) override {
        r.enter("requester");
        next_req_ = r.u64();
        sent_ = r.u64();
        ok_ = r.u64();
        bad_ = r.u64();
        const std::uint64_t n = r.u64();
        outstanding_.clear();
        for (std::uint64_t i = 0; i < n; ++i) outstanding_.push_back(r.u64());
        r.leave();
    }

  private:
    std::function<Word(Word)> expected_;
    std::uint32_t window_;
    std::uint64_t next_req_ = 1;
    std::vector<Word> outstanding_;
    std::uint64_t sent_ = 0;
    std::uint64_t ok_ = 0;
    std::uint64_t bad_ = 0;
};

/// Request/response target: answers each request on input 0 with fn(request)
/// on output 0 (one-deep response queue keeps it purely synchronous).
using ResponderKernel = sb::TransformKernel;

}  // namespace st::wl
