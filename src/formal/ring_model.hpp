#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace st::formal {

/// Bounded formal verification of the synchro-tokens determinism property —
/// the paper's future-work item "Formal methods need to be applied to prove
/// that synchro-tokens enforces deterministic behavior".
///
/// The model abstracts a two-node token ring to its timing-relevant state:
/// per node the FSM phase, hold/recycle counters, token latch, waiting flag
/// and local cycle count; plus the token's position (parked or in flight in
/// either direction). *All* analog timing is abstracted into nondeterministic
/// interleaving: from any state, any running node may commit its next local
/// cycle, and any in-flight token may be delivered. This is a strict
/// superset of physically realizable timings (it includes zero and unbounded
/// wire delays and arbitrary clock ratios), so a property proved over this
/// model holds for every delay assignment.
///
/// Property checked (prefix determinism): across every reachable
/// interleaving, the enable value a node exhibits at local cycle i is unique
/// — i.e. the cycle-indexed enable schedule of each node is a function of
/// the configuration only, not of timing. Auxiliary invariants: exactly one
/// token exists, and no state both holds and waits.
class RingModel {
  public:
    struct Config {
        std::uint32_t hold_a = 3;
        std::uint32_t recycle_a = 5;
        std::uint32_t hold_b = 3;
        std::uint32_t recycle_b = 5;
        std::uint32_t initial_recycle_b = 4;
        std::uint32_t max_cycles = 24;  ///< exploration bound per node
    };

    struct Result {
        bool deterministic = true;
        bool invariants_hold = true;
        std::uint64_t states_explored = 0;
        std::uint64_t transitions = 0;
        std::string violation;  ///< human-readable locus if either fails
        /// The proven canonical schedule: enable bit per cycle per node.
        std::vector<int> schedule_a;  // -1 never observed, 0/1 proven value
        std::vector<int> schedule_b;
    };

    explicit RingModel(Config cfg) : cfg_(cfg) {}

    /// Exhaustive BFS over all interleavings up to the cycle bound.
    Result explore() const;

  private:
    Config cfg_;
};

/// Generalization of RingModel to N-node round-robin rings (the repository's
/// multi-station TokenRing extension). Same abstraction and property: all
/// interleavings of station commits and hop deliveries must yield one unique
/// cycle-indexed enable schedule per station.
class MultiRingModel {
  public:
    struct Station {
        std::uint32_t hold = 3;
        std::uint32_t recycle = 12;
        /// Initial recycle count for non-holders (station 0 always holds).
        std::uint32_t initial_recycle = 12;
    };

    struct Config {
        std::vector<Station> stations;  // >= 2
        std::uint32_t max_cycles = 18;
    };

    struct Result {
        bool deterministic = true;
        bool invariants_hold = true;
        std::uint64_t states_explored = 0;
        std::string violation;
        /// Proven schedule per station (-1 unobserved, else 0/1).
        std::vector<std::vector<int>> schedules;
    };

    explicit MultiRingModel(Config cfg) : cfg_(std::move(cfg)) {}

    Result explore() const;

  private:
    Config cfg_;
};

}  // namespace st::formal
