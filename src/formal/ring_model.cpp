#include "formal/ring_model.hpp"

#include <array>
#include <deque>
#include <set>
#include <sstream>

namespace st::formal {

namespace {

struct NodeS {
    std::uint8_t phase = 1;  // 0 holding, 1 recycling
    std::uint32_t hold = 0;
    std::uint32_t rec = 0;
    bool token_here = false;
    bool waiting = false;
    std::uint32_t cycle = 0;

    bool holding() const { return phase == 0; }
};

struct SysS {
    NodeS a, b;
    bool flight_ab = false;
    bool flight_ba = false;

    std::array<std::uint32_t, 14> key() const {
        return {a.phase, a.hold,  a.rec,  a.token_here, a.waiting, a.cycle,
                b.phase, b.hold,  b.rec,  b.token_here, b.waiting, b.cycle,
                flight_ab, flight_ba};
    }
};

int token_count(const SysS& s) {
    return (s.a.token_here ? 1 : 0) + (s.b.token_here ? 1 : 0) +
           (s.flight_ab ? 1 : 0) + (s.flight_ba ? 1 : 0);
}

}  // namespace

RingModel::Result RingModel::explore() const {
    Result result;
    result.schedule_a.assign(cfg_.max_cycles, -1);
    result.schedule_b.assign(cfg_.max_cycles, -1);

    SysS init;
    init.a.phase = 0;
    init.a.hold = cfg_.hold_a;
    init.a.token_here = true;
    init.b.phase = 1;
    init.b.rec = cfg_.initial_recycle_b;

    std::set<std::array<std::uint32_t, 14>> visited;
    std::deque<SysS> frontier;
    visited.insert(init.key());
    frontier.push_back(init);

    const auto record = [&](std::vector<int>& sched, std::uint32_t cycle,
                            bool enabled, const char* who) {
        if (cycle >= sched.size()) return true;
        const int v = enabled ? 1 : 0;
        if (sched[cycle] == -1) {
            sched[cycle] = v;
            return true;
        }
        if (sched[cycle] != v) {
            std::ostringstream os;
            os << "node " << who << " cycle " << cycle
               << ": enable observed both 0 and 1 across interleavings";
            result.violation = os.str();
            return false;
        }
        return true;
    };

    // Node commit: returns false on an invariant break. `out_flight` is the
    // flight flag the pass sets.
    const auto commit = [&](NodeS& n, std::uint32_t hold_reg,
                            std::uint32_t rec_reg, bool& out_flight,
                            std::vector<int>& sched, const char* who) {
        if (!record(sched, n.cycle, n.holding(), who)) return false;
        ++n.cycle;
        if (n.holding()) {
            if (--n.hold == 0) {
                n.phase = 1;
                n.rec = rec_reg;
                n.token_here = false;
                out_flight = true;  // pass the token onto the wire
            }
        } else {
            if (n.rec > 0) --n.rec;
            if (n.rec == 0) {
                if (n.token_here) {
                    n.phase = 0;
                    n.hold = hold_reg;
                } else {
                    n.waiting = true;  // clock stops
                }
            }
        }
        return true;
    };

    const auto deliver = [&](NodeS& n, bool& flight, std::uint32_t hold_reg) {
        flight = false;
        if (n.holding()) {
            result.invariants_hold = false;
            result.violation = "token delivered to a holding node";
            return false;
        }
        n.token_here = true;
        if (n.waiting) {  // late token: asynchronous restart
            n.waiting = false;
            n.phase = 0;
            n.hold = hold_reg;
        }
        return true;
    };

    while (!frontier.empty() && result.violation.empty()) {
        const SysS s = frontier.front();
        frontier.pop_front();
        ++result.states_explored;

        if (token_count(s) != 1) {
            result.invariants_hold = false;
            result.violation = "token conservation broken";
            break;
        }
        if ((s.a.holding() && s.a.waiting) || (s.b.holding() && s.b.waiting)) {
            result.invariants_hold = false;
            result.violation = "node both holding and waiting";
            break;
        }

        const auto push = [&](const SysS& next) {
            ++result.transitions;
            if (visited.insert(next.key()).second) frontier.push_back(next);
        };

        if (!s.a.waiting && s.a.cycle < cfg_.max_cycles) {
            SysS next = s;
            if (!commit(next.a, cfg_.hold_a, cfg_.recycle_a, next.flight_ab,
                        result.schedule_a, "A")) {
                break;
            }
            push(next);
        }
        if (!s.b.waiting && s.b.cycle < cfg_.max_cycles) {
            SysS next = s;
            if (!commit(next.b, cfg_.hold_b, cfg_.recycle_b, next.flight_ba,
                        result.schedule_b, "B")) {
                break;
            }
            push(next);
        }
        if (s.flight_ab) {
            SysS next = s;
            if (!deliver(next.b, next.flight_ab, cfg_.hold_b)) break;
            push(next);
        }
        if (s.flight_ba) {
            SysS next = s;
            if (!deliver(next.a, next.flight_ba, cfg_.hold_a)) break;
            push(next);
        }
    }

    result.deterministic = result.violation.empty();
    return result;
}



namespace {

struct MNode {
    std::uint8_t phase = 1;  // 0 holding, 1 recycling
    std::uint32_t hold = 0;
    std::uint32_t rec = 0;
    bool token_here = false;
    bool waiting = false;
    std::uint32_t cycle = 0;
};

struct MState {
    std::vector<MNode> nodes;
    int flight_from = -1;  // hop in flight from this index, -1 = none

    std::vector<std::uint32_t> key() const {
        std::vector<std::uint32_t> k;
        k.reserve(nodes.size() * 6 + 1);
        for (const auto& n : nodes) {
            k.push_back(n.phase);
            k.push_back(n.hold);
            k.push_back(n.rec);
            k.push_back(n.token_here);
            k.push_back(n.waiting);
            k.push_back(n.cycle);
        }
        k.push_back(static_cast<std::uint32_t>(flight_from + 1));
        return k;
    }
};

}  // namespace

MultiRingModel::Result MultiRingModel::explore() const {
    Result result;
    const std::size_t n = cfg_.stations.size();
    if (n < 2) {
        result.deterministic = false;
        result.violation = "need at least two stations";
        return result;
    }
    result.schedules.assign(
        n, std::vector<int>(cfg_.max_cycles, -1));

    MState init;
    init.nodes.resize(n);
    init.nodes[0].phase = 0;
    init.nodes[0].hold = cfg_.stations[0].hold;
    init.nodes[0].token_here = true;
    for (std::size_t i = 1; i < n; ++i) {
        init.nodes[i].phase = 1;
        init.nodes[i].rec = cfg_.stations[i].initial_recycle;
    }

    std::set<std::vector<std::uint32_t>> visited;
    std::deque<MState> frontier;
    visited.insert(init.key());
    frontier.push_back(init);

    const auto record = [&](std::size_t i, std::uint32_t cycle, bool en) {
        auto& sched = result.schedules[i];
        if (cycle >= sched.size()) return true;
        const int v = en ? 1 : 0;
        if (sched[cycle] == -1) {
            sched[cycle] = v;
            return true;
        }
        if (sched[cycle] != v) {
            std::ostringstream os;
            os << "station " << i << " cycle " << cycle
               << ": enable diverges across interleavings";
            result.violation = os.str();
            return false;
        }
        return true;
    };

    while (!frontier.empty() && result.violation.empty()) {
        const MState s = frontier.front();
        frontier.pop_front();
        ++result.states_explored;

        int tokens = s.flight_from >= 0 ? 1 : 0;
        for (const auto& node : s.nodes) tokens += node.token_here ? 1 : 0;
        if (tokens != 1) {
            result.invariants_hold = false;
            result.violation = "token conservation broken";
            break;
        }

        const auto push = [&](MState next) {
            if (visited.insert(next.key()).second) {
                frontier.push_back(std::move(next));
            }
        };

        for (std::size_t i = 0; i < n && result.violation.empty(); ++i) {
            const auto& node = s.nodes[i];
            if (node.waiting || node.cycle >= cfg_.max_cycles) continue;
            MState next = s;
            auto& m = next.nodes[i];
            if (!record(i, m.cycle, m.phase == 0)) break;
            ++m.cycle;
            if (m.phase == 0) {
                if (--m.hold == 0) {
                    m.phase = 1;
                    m.rec = cfg_.stations[i].recycle;
                    m.token_here = false;
                    next.flight_from = static_cast<int>(i);
                }
            } else {
                if (m.rec > 0) --m.rec;
                if (m.rec == 0) {
                    if (m.token_here) {
                        m.phase = 0;
                        m.hold = cfg_.stations[i].hold;
                    } else {
                        m.waiting = true;
                    }
                }
            }
            push(std::move(next));
        }

        if (s.flight_from >= 0 && result.violation.empty()) {
            MState next = s;
            const std::size_t to =
                (static_cast<std::size_t>(s.flight_from) + 1) % n;
            next.flight_from = -1;
            auto& m = next.nodes[to];
            if (m.phase == 0) {
                result.invariants_hold = false;
                result.violation = "token delivered to a holding station";
                break;
            }
            m.token_here = true;
            if (m.waiting) {
                m.waiting = false;
                m.phase = 0;
                m.hold = cfg_.stations[to].hold;
            }
            push(std::move(next));
        }
    }

    result.deterministic = result.violation.empty();
    return result;
}

}  // namespace st::formal
