#pragma once

#include <cstdint>
#include <functional>

#include "async/types.hpp"
#include "sim/time.hpp"
#include "snap/snapshot.hpp"

namespace st::achan {

class LinkSink;

/// Protocol-independent view of a point-to-point bundled-data link. Two
/// implementations exist: FourPhaseLink (return-to-zero, level signalling)
/// and TwoPhaseLink (non-return-to-zero, transition signalling). Producers
/// call send(); consumers provide a LinkSink and nudge a back-pressured
/// transfer with poke().
class Link : public snap::Snapshottable {
  public:
    ~Link() override = default;

    virtual void bind_sink(LinkSink* sink) = 0;
    virtual bool has_sink() const = 0;
    virtual void on_complete(std::function<void()> fn) = 0;

    virtual bool idle() const = 0;
    virtual bool request_pending() const = 0;
    virtual void send(Word w) = 0;
    virtual void poke() = 0;

    // --- statistics ---
    virtual std::uint64_t transfers() const = 0;
    virtual sim::Time last_latency() const = 0;
    virtual sim::Time max_latency() const = 0;

    /// Unloaded handshake completion latency, for timing budgets.
    virtual sim::Time unloaded_latency() const = 0;
};

/// Handshake protocol selector used by channel configuration.
enum class LinkProtocol : std::uint8_t {
    kFourPhase,  ///< return-to-zero: 2*(req+ack) per transfer
    kTwoPhase,   ///< transition signalling: req+ack per transfer
};

}  // namespace st::achan
