#include "async/make_link.hpp"

namespace st::achan {

std::unique_ptr<Link> make_link(sim::Scheduler& sched, std::string name,
                                FourPhaseLink::Params params) {
    if (params.protocol == LinkProtocol::kTwoPhase) {
        return std::make_unique<TwoPhaseLink>(sched, std::move(name), params);
    }
    return std::make_unique<FourPhaseLink>(sched, std::move(name), params);
}

sim::Time unloaded_link_latency(const FourPhaseLink::Params& params) {
    return params.protocol == LinkProtocol::kTwoPhase
               ? params.req_delay + params.ack_delay
               : 2 * (params.req_delay + params.ack_delay);
}

sim::Time post_accept_link_latency(const FourPhaseLink::Params& params) {
    return params.protocol == LinkProtocol::kTwoPhase
               ? params.ack_delay
               : params.ack_delay + params.req_delay + params.ack_delay;
}

}  // namespace st::achan
