#include "async/arbiter.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace st::achan {

void MutexElement::request_a() {
    if (req_a_) throw std::logic_error("MutexElement[" + name_ + "]: A re-request");
    req_a_ = true;
    req_a_time_ = sched_.now();
    arbitrate();
}

void MutexElement::request_b() {
    if (req_b_) throw std::logic_error("MutexElement[" + name_ + "]: B re-request");
    req_b_ = true;
    req_b_time_ = sched_.now();
    arbitrate();
}

void MutexElement::release_a() {
    req_a_ = false;
    if (granted_a_) {
        granted_a_ = false;
    } else {
        // Withdrawn while pending: void any in-flight decision.
        ++decision_gen_;
        deciding_ = false;
    }
    arbitrate();
}

void MutexElement::release_b() {
    req_b_ = false;
    if (granted_b_) {
        granted_b_ = false;
    } else {
        ++decision_gen_;
        deciding_ = false;
    }
    arbitrate();
}

void MutexElement::arbitrate() {
    if (granted_a_ || granted_b_ || deciding_) return;
    if (!req_a_ && !req_b_) return;
    deciding_ = true;
    const std::uint64_t gen = ++decision_gen_;
    sched_.schedule_after(params_.grant_delay, [this, gen] {
        if (gen != decision_gen_ || !deciding_) return;
        // Winner: the earlier request (ties go to A — a fixed, physical
        // asymmetry; which side wins a tie is exactly the delay-sensitive
        // bit that varies die to die).
        bool to_a = req_a_;
        sim::Time extra = 0;
        if (req_a_ && req_b_) {
            to_a = req_a_time_ <= req_b_time_;
            const sim::Time sep = req_a_time_ <= req_b_time_
                                      ? req_b_time_ - req_a_time_
                                      : req_a_time_ - req_b_time_;
            if (sep < params_.window) {
                // tau model: t_res = tau * ln(window / separation).
                const double s = std::max<double>(1.0, static_cast<double>(sep));
                const double res =
                    static_cast<double>(params_.tau) *
                    std::log(static_cast<double>(params_.window) / s);
                extra = std::min(params_.max_resolution,
                                 static_cast<sim::Time>(res + 0.5));
                ++metastable_events_;
                worst_resolution_ = std::max(worst_resolution_, extra);
            }
        }
        if (extra > 0) {
            sched_.schedule_after(extra, [this, gen, to_a] {
                if (gen != decision_gen_ || !deciding_) return;
                issue_grant(to_a, 0);
            });
        } else {
            issue_grant(to_a, 0);
        }
    });
}

void MutexElement::issue_grant(bool to_a, sim::Time /*extra*/) {
    deciding_ = false;
    ++grants_;
    if (to_a) {
        granted_a_ = true;
        if (grant_a_) grant_a_();
    } else {
        granted_b_ = true;
        if (grant_b_) grant_b_();
    }
}

}  // namespace st::achan
