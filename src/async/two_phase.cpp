#include "async/two_phase.hpp"

#include <stdexcept>

namespace st::achan {

void TwoPhaseLink::send(Word w) {
    if (state_ != State::kIdle) {
        throw std::logic_error("TwoPhaseLink[" + name_ + "]: send while busy");
    }
    if (sink_ == nullptr) {
        throw std::logic_error("TwoPhaseLink[" + name_ + "]: no sink bound");
    }
    state_ = State::kReqFlight;
    word_ = mask_word(w, params_.data_bits);
    send_time_ = sched_.now();
    pending_time_ = sched_.now() + params_.req_delay;
    pending_seq_ = sched_.schedule_after(params_.req_delay,
                                         sim::EventTag{this, "link.req"},
                                         [this] { sink_sees_req(); });
}

void TwoPhaseLink::sink_sees_req() {
    if (sink_->can_accept()) {
        do_accept();
    } else {
        state_ = State::kReqPending;
    }
}

void TwoPhaseLink::poke() {
    if (state_ == State::kReqPending && sink_->can_accept()) {
        do_accept();
    }
}

void TwoPhaseLink::do_accept() {
    state_ = State::kAckFlight;
    sink_->accept(word_);
    // NRZ: the ack transition alone completes the transfer.
    pending_time_ = sched_.now() + params_.ack_delay;
    pending_seq_ = sched_.schedule_after(params_.ack_delay,
                                         sim::EventTag{this, "link.ack"},
                                         [this] { finish_ack(); });
}

void TwoPhaseLink::finish_ack() {
    state_ = State::kIdle;
    ++transfers_;
    last_latency_ = sched_.now() - send_time_;
    if (last_latency_ > max_latency_) max_latency_ = last_latency_;
    if (complete_) complete_();
}

void TwoPhaseLink::save_state(snap::StateWriter& w) const {
    w.begin("link2");
    w.u8(static_cast<std::uint8_t>(state_));
    w.u64(word_);
    w.u64(send_time_);
    w.u64(transfers_);
    w.u64(last_latency_);
    w.u64(max_latency_);
    if (state_ == State::kReqFlight || state_ == State::kAckFlight) {
        w.u64(pending_time_);
        w.u64(pending_seq_);
    }
    w.end();
}

void TwoPhaseLink::restore_state(snap::StateReader& r) {
    r.enter("link2");
    state_ = static_cast<State>(r.u8());
    word_ = r.u64();
    send_time_ = r.u64();
    transfers_ = r.u64();
    last_latency_ = r.u64();
    max_latency_ = r.u64();
    if (state_ == State::kReqFlight || state_ == State::kAckFlight) {
        pending_time_ = r.u64();
        pending_seq_ = r.u64();
        if (state_ == State::kReqFlight) {
            sched_.rearm(pending_time_, sim::Priority::kDefault,
                         sim::EventTag{this, "link.req"}, pending_seq_,
                         [this] { sink_sees_req(); });
        } else {
            sched_.rearm(pending_time_, sim::Priority::kDefault,
                         sim::EventTag{this, "link.ack"}, pending_seq_,
                         [this] { finish_ack(); });
        }
    }
    r.leave();
}

}  // namespace st::achan
