#include "async/two_phase.hpp"

#include <stdexcept>

namespace st::achan {

void TwoPhaseLink::send(Word w) {
    if (state_ != State::kIdle) {
        throw std::logic_error("TwoPhaseLink[" + name_ + "]: send while busy");
    }
    if (sink_ == nullptr) {
        throw std::logic_error("TwoPhaseLink[" + name_ + "]: no sink bound");
    }
    state_ = State::kReqFlight;
    word_ = mask_word(w, params_.data_bits);
    send_time_ = sched_.now();
    sched_.schedule_after(params_.req_delay, sim::EventTag{this, "link.req"},
                          [this] { sink_sees_req(); });
}

void TwoPhaseLink::sink_sees_req() {
    if (sink_->can_accept()) {
        do_accept();
    } else {
        state_ = State::kReqPending;
    }
}

void TwoPhaseLink::poke() {
    if (state_ == State::kReqPending && sink_->can_accept()) {
        do_accept();
    }
}

void TwoPhaseLink::do_accept() {
    state_ = State::kAckFlight;
    sink_->accept(word_);
    // NRZ: the ack transition alone completes the transfer.
    sched_.schedule_after(params_.ack_delay, sim::EventTag{this, "link.ack"},
                          [this] {
        state_ = State::kIdle;
        ++transfers_;
        last_latency_ = sched_.now() - send_time_;
        if (last_latency_ > max_latency_) max_latency_ = last_latency_;
        if (complete_) complete_();
    });
}

}  // namespace st::achan
