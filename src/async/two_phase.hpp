#pragma once

#include <string>

#include "async/four_phase.hpp"
#include "async/link.hpp"

namespace st::achan {

/// Two-phase (transition-signalling / NRZ) bundled-data link: every
/// transition of req carries one word; the matching ack transition completes
/// it. Half the handshake latency of the four-phase link (req + ack instead
/// of 2*(req + ack)) at the cost of transition-detecting latch controllers
/// (reflected in the area models).
class TwoPhaseLink final : public Link {
  public:
    /// Reuses FourPhaseLink::Params (same wire-delay fields).
    TwoPhaseLink(sim::Scheduler& sched, std::string name,
                 FourPhaseLink::Params p)
        : sched_(sched), name_(std::move(name)), params_(p) {}

    TwoPhaseLink(const TwoPhaseLink&) = delete;
    TwoPhaseLink& operator=(const TwoPhaseLink&) = delete;

    void bind_sink(LinkSink* sink) override { sink_ = sink; }
    bool has_sink() const override { return sink_ != nullptr; }
    void on_complete(std::function<void()> fn) override {
        complete_ = std::move(fn);
    }

    bool idle() const override { return state_ == State::kIdle; }
    bool request_pending() const override {
        return state_ == State::kReqPending;
    }
    void send(Word w) override;
    void poke() override;

    std::uint64_t transfers() const override { return transfers_; }
    sim::Time last_latency() const override { return last_latency_; }
    sim::Time max_latency() const override { return max_latency_; }
    sim::Time unloaded_latency() const override {
        return params_.req_delay + params_.ack_delay;
    }
    const FourPhaseLink::Params& params() const { return params_; }

    /// Snapshot: same shape as FourPhaseLink (chunk name "link2").
    void save_state(snap::StateWriter& w) const override;
    void restore_state(snap::StateReader& r) override;

  private:
    enum class State { kIdle, kReqFlight, kReqPending, kAckFlight };

    void sink_sees_req();
    void do_accept();
    void finish_ack();

    sim::Scheduler& sched_;
    std::string name_;
    FourPhaseLink::Params params_;
    LinkSink* sink_ = nullptr;
    std::function<void()> complete_;

    State state_ = State::kIdle;
    Word word_ = 0;
    sim::Time send_time_ = 0;
    std::uint64_t transfers_ = 0;
    sim::Time last_latency_ = 0;
    sim::Time max_latency_ = 0;
    // Fire slot of the in-flight event (kReqFlight / kAckFlight states).
    sim::Time pending_time_ = 0;
    std::uint64_t pending_seq_ = 0;
};

}  // namespace st::achan
