#pragma once

#include <cstdint>

namespace st {

/// One bundled data word. Channels carry up to 64 data bits; the actual
/// bus width of a channel is configuration (it only affects area models and
/// value masking), so a single POD word type serves every channel.
using Word = std::uint64_t;

/// Mask a word to `bits` data bits (bits == 64 passes through).
constexpr Word mask_word(Word w, unsigned bits) {
    return bits >= 64 ? w : (w & ((Word{1} << bits) - 1));
}

}  // namespace st
