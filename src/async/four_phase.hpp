#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "async/link.hpp"
#include "async/types.hpp"
#include "sim/scheduler.hpp"

namespace st::achan {

/// Consumer-side policy of a four-phase link.
class LinkSink {
  public:
    virtual ~LinkSink() = default;

    /// May the pending word be latched right now? Returning false leaves the
    /// request asserted (backpressure); the consumer later calls
    /// FourPhaseLink::poke() when it becomes ready.
    virtual bool can_accept() const = 0;

    /// Latch the word (called exactly once per transfer, when accepted).
    virtual void accept(Word w) = 0;
};

/// Four-phase (return-to-zero) bundled-data handshake link.
///
/// Producer calls `send()`; req rises and, after the request wire delay, the
/// sink either latches the data and raises ack, or leaves the request pending
/// (backpressure) until `poke()`d. The return-to-zero half then completes and
/// the producer's completion callback fires. Unloaded handshake latency is
/// 2·(req_delay + ack_delay) — the paper requires this to fit within one
/// local clock cycle, which `verify::TimingChecker` audits.
class FourPhaseLink final : public Link {
  public:
    struct Params {
        unsigned data_bits = 32;
        sim::Time req_delay = 20;  ///< producer→consumer wire delay, ps
        sim::Time ack_delay = 20;  ///< consumer→producer wire delay, ps
        /// Protocol selector honoured by make_link(); FourPhaseLink itself
        /// always runs return-to-zero.
        LinkProtocol protocol = LinkProtocol::kFourPhase;
    };

    FourPhaseLink(sim::Scheduler& sched, std::string name, Params p)
        : sched_(sched), name_(std::move(name)), params_(p) {}

    FourPhaseLink(const FourPhaseLink&) = delete;
    FourPhaseLink& operator=(const FourPhaseLink&) = delete;

    void bind_sink(LinkSink* sink) override { sink_ = sink; }

    /// True once a consumer is attached (FIFOs skip head delivery otherwise,
    /// e.g. when a synchronous consumer uses SelfTimedFifo::pop_head).
    bool has_sink() const override { return sink_ != nullptr; }

    /// Producer-side completion callback (link returned to idle).
    void on_complete(std::function<void()> fn) override {
        complete_ = std::move(fn);
    }

    /// True when the producer may start a new transfer.
    bool idle() const override { return state_ == State::kIdle; }

    /// True when a request is asserted but the sink has not accepted yet.
    bool request_pending() const override {
        return state_ == State::kReqPending;
    }

    /// Begin a transfer. Precondition: idle().
    void send(Word w) override;

    /// Consumer-side nudge: re-evaluate a pending request (the sink became
    /// ready). Safe to call in any state.
    void poke() override;

    // --- statistics (used by timing checker and benches) ---
    std::uint64_t transfers() const override { return transfers_; }
    sim::Time last_latency() const override { return last_latency_; }
    sim::Time max_latency() const override { return max_latency_; }
    sim::Time unloaded_latency() const override {
        return 2 * (params_.req_delay + params_.ack_delay);
    }
    const Params& params() const { return params_; }
    const std::string& name() const { return name_; }

    /// Snapshot: handshake state machine, data word, stats, and the fire
    /// slot of the in-flight req/rtz event (re-armed by restore_state).
    void save_state(snap::StateWriter& w) const override;
    void restore_state(snap::StateReader& r) override;

  private:
    enum class State {
        kIdle,        ///< req low, ack low
        kReqFlight,   ///< req rising, in flight to sink
        kReqPending,  ///< req seen by sink, sink not ready (backpressure)
        kAckFlight,   ///< data latched, ack rising / return-to-zero running
    };

    void sink_sees_req();
    void do_accept();
    void finish_rtz();

    sim::Scheduler& sched_;
    std::string name_;
    Params params_;
    LinkSink* sink_ = nullptr;
    std::function<void()> complete_;

    State state_ = State::kIdle;
    Word word_ = 0;
    sim::Time send_time_ = 0;
    std::uint64_t transfers_ = 0;
    sim::Time last_latency_ = 0;
    sim::Time max_latency_ = 0;
    // Fire slot of the in-flight event (kReqFlight / kAckFlight states).
    sim::Time pending_time_ = 0;
    std::uint64_t pending_seq_ = 0;
};

}  // namespace st::achan
