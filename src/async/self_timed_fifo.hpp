#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "async/four_phase.hpp"
#include "async/make_link.hpp"
#include "async/types.hpp"
#include "sim/scheduler.hpp"

namespace st::achan {

/// Behavioural self-timed (micropipeline) FIFO.
///
/// Words ripple stage-to-stage with a per-stage propagation delay; movement
/// is purely event-driven, exactly like a chain of asynchronous latch
/// controllers. The upstream producer talks to the *tail* through a
/// FourPhaseLink bound to `tail_sink()`; the FIFO itself owns the *head*
/// link, which pushes the head word to whatever sink is bound downstream
/// (normally a synchro-tokens input interface).
///
/// The paper's head-visibility timing constraint — data added to the tail
/// just before the token departs must reach the head before the token enables
/// the head interface — is auditable via `last_head_arrival()`.
class SelfTimedFifo : public LinkSink, public snap::Snapshottable {
  public:
    struct Params {
        std::size_t depth = 4;        ///< number of stages (>= 1)
        sim::Time stage_delay = 100;  ///< per-stage propagation delay F, ps
        unsigned data_bits = 32;
        sim::Time head_req_delay = 20;  ///< head link request wire delay
        sim::Time head_ack_delay = 20;  ///< head link acknowledge wire delay
        /// Handshake protocol of the FIFO-owned head link.
        LinkProtocol head_protocol = LinkProtocol::kFourPhase;
    };

    SelfTimedFifo(sim::Scheduler& sched, std::string name, Params p);

    SelfTimedFifo(const SelfTimedFifo&) = delete;
    SelfTimedFifo& operator=(const SelfTimedFifo&) = delete;

    /// The sink the upstream producer's link must bind to.
    LinkSink& tail_sink() { return *this; }

    /// Let the FIFO nudge the upstream link when the tail stage frees
    /// (completes a backpressured transfer).
    void attach_tail_link(Link* link) { tail_link_ = link; }

    /// FIFO-owned producer link feeding the downstream consumer.
    Link& head_link() { return *head_link_; }

    // --- LinkSink (tail side) ---
    bool can_accept() const override;
    void accept(Word w) override;

    // --- direct synchronous access (STARI-style endpoints) ---
    /// Pop the head word without a head link handshake. Precondition:
    /// head_valid() and no head-link delivery in flight.
    Word pop_head();

    /// Place words directly into the head-most stages of an empty FIFO, as
    /// if they had settled long ago (STARI initializes its FIFO roughly half
    /// full before the clocks start). words.front() becomes the head.
    void preload(const std::vector<Word>& words);

    // --- observation ---
    std::size_t depth() const { return params_.depth; }
    std::size_t occupancy() const;  ///< words currently inside stages
    bool head_valid() const { return stages_.back().has_value(); }
    bool tail_free() const { return can_accept(); }
    std::uint64_t words_in() const { return words_in_; }
    std::uint64_t words_out() const { return words_out_; }
    sim::Time last_head_arrival() const { return last_head_arrival_; }
    const Params& params() const { return params_; }
    const std::string& name() const { return name_; }

    /// Change the per-stage delay (used by perturbation sweeps before t=0).
    void set_stage_delay(sim::Time d) { params_.stage_delay = d; }

    // --- fault injection (opt-in) ---
    /// One injected defect on a ripple hop: the move is slowed by
    /// `extra_delay` (a stage-stall fault) and/or the word in flight is
    /// replaced by `force_word` (a stuck-data fault; masked to data_bits).
    struct StageFault {
        sim::Time extra_delay = 0;
        std::optional<Word> force_word;
    };

    /// Fault hook consulted once per ripple, as the move into `to_stage`
    /// is launched with word `w`. Depth-1 FIFOs have no ripple hops and are
    /// not faultable through this surface.
    using StageFaultFn = std::function<StageFault(std::size_t to_stage, Word w)>;
    void set_stage_fault(StageFaultFn fn) { stage_fault_ = std::move(fn); }

    /// Snapshot: stage contents, per-stage in-flight ripple (fire slot and
    /// the *resolved* word — a stuck-data fault already decided what lands),
    /// head-link state, counters. restore_state re-arms every ripple.
    void save_state(snap::StateWriter& w) const override;
    void restore_state(snap::StateReader& r) override;

  private:
    void try_advance(std::size_t i);
    void finish_move(std::size_t i, std::optional<Word> force);
    void try_send_head();

    /// Bookkeeping for an in-flight ripple out of stage i (moving_[i]).
    struct PendingMove {
        sim::Time t = 0;
        std::uint64_t seq = 0;
        std::optional<Word> force;  ///< fault-resolved replacement word
    };

    sim::Scheduler& sched_;
    std::string name_;
    Params params_;
    std::vector<std::optional<Word>> stages_;  // [0]=tail, [depth-1]=head
    std::vector<bool> moving_;                 // stage i -> i+1 in flight
    std::vector<PendingMove> moves_;           // valid where moving_[i]
    StageFaultFn stage_fault_;
    std::unique_ptr<Link> head_link_;
    Link* tail_link_ = nullptr;
    bool head_sending_ = false;
    std::uint64_t words_in_ = 0;
    std::uint64_t words_out_ = 0;
    sim::Time last_head_arrival_ = 0;
};

}  // namespace st::achan
