#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "sim/scheduler.hpp"

namespace st::achan {

/// Mutual-exclusion (mutex) element — the circuit the paper's §1 singles
/// out, with arbiters and synchronizers, as the principal source of
/// nondeterminism: "The output sequence of these circuits depends on the
/// relative order of input transitions, which is in turn sensitive to
/// variables such as clock frequencies, clock skew, process variation, and
/// noise."
///
/// Behaviour: two request inputs compete for one grant. The earlier request
/// wins; when the separation between the two requests falls inside the
/// metastability window the element still resolves to the earlier one, but
/// only after an extra resolution delay that grows as the separation
/// shrinks (the classic tau model: t_res = tau * ln(window / separation)).
/// Metastability is thus modelled *without* nondeterminism inside one run —
/// matching §1's observation that the absence of metastability does not
/// imply determinism; it is the delay-sensitivity of the winner that makes
/// systems built on this element nondeterministic across delay variations.
class MutexElement {
  public:
    struct Params {
        sim::Time grant_delay = 30;    ///< request-to-grant, uncontended
        sim::Time window = 60;         ///< metastability window, ps
        sim::Time tau = 25;            ///< resolution time constant, ps
        sim::Time max_resolution = 500; ///< cap on the extra delay
    };

    MutexElement(sim::Scheduler& sched, std::string name, Params p)
        : sched_(sched), name_(std::move(name)), params_(p) {}

    MutexElement(const MutexElement&) = delete;
    MutexElement& operator=(const MutexElement&) = delete;

    /// Grant callbacks, invoked with the grant time.
    void on_grant_a(std::function<void()> fn) { grant_a_ = std::move(fn); }
    void on_grant_b(std::function<void()> fn) { grant_b_ = std::move(fn); }

    /// Raise request A/B. A granted side must release before re-requesting.
    void request_a();
    void request_b();

    /// Drop a granted or pending request.
    void release_a();
    void release_b();

    bool granted_a() const { return granted_a_; }
    bool granted_b() const { return granted_b_; }

    std::uint64_t grants() const { return grants_; }
    std::uint64_t metastable_events() const { return metastable_events_; }
    sim::Time worst_resolution() const { return worst_resolution_; }
    const std::string& name() const { return name_; }

  private:
    void arbitrate();
    void issue_grant(bool to_a, sim::Time extra);

    sim::Scheduler& sched_;
    std::string name_;
    Params params_;
    std::function<void()> grant_a_;
    std::function<void()> grant_b_;

    bool req_a_ = false;
    bool req_b_ = false;
    sim::Time req_a_time_ = 0;
    sim::Time req_b_time_ = 0;
    bool granted_a_ = false;
    bool granted_b_ = false;
    bool deciding_ = false;
    std::uint64_t decision_gen_ = 0;

    std::uint64_t grants_ = 0;
    std::uint64_t metastable_events_ = 0;
    sim::Time worst_resolution_ = 0;
};

}  // namespace st::achan
