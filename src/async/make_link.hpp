#pragma once

#include <memory>
#include <string>

#include "async/four_phase.hpp"
#include "async/link.hpp"
#include "async/two_phase.hpp"

namespace st::achan {

/// Construct a link of the protocol selected in `params.protocol`.
std::unique_ptr<Link> make_link(sim::Scheduler& sched, std::string name,
                                FourPhaseLink::Params params);

/// Unloaded handshake completion latency of the selected protocol.
sim::Time unloaded_link_latency(const FourPhaseLink::Params& params);

/// Latency from sink acceptance to link idle (the tail a pending transfer
/// still needs after the enable gate opens) of the selected protocol.
sim::Time post_accept_link_latency(const FourPhaseLink::Params& params);

}  // namespace st::achan
