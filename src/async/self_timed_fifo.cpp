#include "async/self_timed_fifo.hpp"

#include <stdexcept>

namespace st::achan {

SelfTimedFifo::SelfTimedFifo(sim::Scheduler& sched, std::string name, Params p)
    : sched_(sched),
      name_(std::move(name)),
      params_(p),
      stages_(p.depth),
      moving_(p.depth, false),
      moves_(p.depth),
      head_link_(make_link(sched, name_ + ".head",
                           FourPhaseLink::Params{p.data_bits,
                                                 p.head_req_delay,
                                                 p.head_ack_delay,
                                                 p.head_protocol})) {
    if (params_.depth == 0) {
        throw std::invalid_argument("SelfTimedFifo: zero depth");
    }
    if (params_.data_bits == 0 || params_.data_bits > 64) {
        throw std::invalid_argument("SelfTimedFifo[" + name_ +
                                    "]: data_bits must be in [1, 64]");
    }
    head_link_->on_complete([this] {
        // Downstream latched the head word and the handshake returned to
        // zero: free the head stage and keep the pipeline moving.
        stages_.back().reset();
        head_sending_ = false;
        ++words_out_;
        if (params_.depth >= 2) try_advance(params_.depth - 2);
        if (params_.depth == 1 && tail_link_ != nullptr) tail_link_->poke();
        try_send_head();
    });
}

bool SelfTimedFifo::can_accept() const { return !stages_.front().has_value(); }

void SelfTimedFifo::accept(Word w) {
    if (stages_.front().has_value()) {
        throw std::logic_error("SelfTimedFifo[" + name_ + "]: tail overrun");
    }
    stages_.front() = mask_word(w, params_.data_bits);
    ++words_in_;
    if (params_.depth == 1) {
        last_head_arrival_ = sched_.now();
        try_send_head();
    } else {
        try_advance(0);
    }
}

std::size_t SelfTimedFifo::occupancy() const {
    std::size_t n = 0;
    for (const auto& s : stages_) n += s.has_value() ? 1 : 0;
    return n;
}

void SelfTimedFifo::try_advance(std::size_t i) {
    if (i + 1 >= params_.depth) return;
    if (!stages_[i].has_value() || moving_[i]) return;
    if (stages_[i + 1].has_value() || moving_[i + 1]) return;
    moving_[i] = true;
    StageFault fault;
    if (stage_fault_) fault = stage_fault_(i + 1, *stages_[i]);
    std::optional<Word> force;
    if (fault.force_word) {
        force = mask_word(*fault.force_word, params_.data_bits);
    }
    moves_[i].t = sched_.now() + params_.stage_delay + fault.extra_delay;
    moves_[i].force = force;
    // Actor = the receiving stage: two ripple arrivals into one stage at the
    // same instant would be an observable ordering race; moves of disjoint
    // stages commute and may share a slot freely.
    moves_[i].seq = sched_.schedule_after(
        params_.stage_delay + fault.extra_delay,
        sim::EventTag{&stages_[i + 1], "fifo.ripple"},
        [this, i, force] { finish_move(i, force); });
}

void SelfTimedFifo::finish_move(std::size_t i, std::optional<Word> force) {
    stages_[i + 1] = force ? *force : *stages_[i];
    stages_[i].reset();
    moving_[i] = false;
    if (i + 1 == params_.depth - 1) {
        last_head_arrival_ = sched_.now();
        try_send_head();
    } else {
        try_advance(i + 1);
    }
    if (i > 0) {
        try_advance(i - 1);
    } else if (tail_link_ != nullptr) {
        // Tail stage freed: a backpressured upstream transfer can land.
        tail_link_->poke();
    }
}

void SelfTimedFifo::save_state(snap::StateWriter& w) const {
    w.begin_group("fifo");
    w.begin("stages");
    w.u64(params_.stage_delay);
    w.u64(params_.depth);
    for (std::size_t i = 0; i < params_.depth; ++i) {
        w.b(stages_[i].has_value());
        w.u64(stages_[i].value_or(0));
        w.b(moving_[i]);
        if (moving_[i]) {
            w.u64(moves_[i].t);
            w.u64(moves_[i].seq);
            w.b(moves_[i].force.has_value());
            w.u64(moves_[i].force.value_or(0));
        }
    }
    w.b(head_sending_);
    w.u64(words_in_);
    w.u64(words_out_);
    w.u64(last_head_arrival_);
    w.end();
    head_link_->save_state(w);
    w.end();
}

void SelfTimedFifo::restore_state(snap::StateReader& r) {
    r.enter("fifo");
    r.enter("stages");
    params_.stage_delay = r.u64();
    if (r.u64() != params_.depth) {
        throw snap::SnapshotError("SelfTimedFifo[" + name_ +
                                  "]: depth mismatch");
    }
    for (std::size_t i = 0; i < params_.depth; ++i) {
        const bool has = r.b();
        const Word v = r.u64();
        stages_[i] = has ? std::optional<Word>(v) : std::nullopt;
        moving_[i] = r.b();
        if (moving_[i]) {
            moves_[i].t = r.u64();
            moves_[i].seq = r.u64();
            const bool forced = r.b();
            const Word fv = r.u64();
            moves_[i].force =
                forced ? std::optional<Word>(fv) : std::nullopt;
            const auto force = moves_[i].force;
            sched_.rearm(moves_[i].t, sim::Priority::kDefault,
                         sim::EventTag{&stages_[i + 1], "fifo.ripple"},
                         moves_[i].seq,
                         [this, i, force] { finish_move(i, force); });
        }
    }
    head_sending_ = r.b();
    words_in_ = r.u64();
    words_out_ = r.u64();
    last_head_arrival_ = r.u64();
    r.leave();
    head_link_->restore_state(r);
    r.leave();
}

void SelfTimedFifo::try_send_head() {
    if (!head_link_->has_sink()) return;  // synchronous consumer pops directly
    if (head_sending_ || !stages_.back().has_value() || !head_link_->idle()) {
        return;
    }
    head_sending_ = true;
    head_link_->send(*stages_.back());
}

Word SelfTimedFifo::pop_head() {
    if (!stages_.back().has_value() || head_sending_) {
        throw std::logic_error("SelfTimedFifo[" + name_ + "]: pop on empty head");
    }
    const Word w = *stages_.back();
    stages_.back().reset();
    ++words_out_;
    if (params_.depth >= 2) {
        try_advance(params_.depth - 2);
    } else if (tail_link_ != nullptr) {
        tail_link_->poke();
    }
    return w;
}

void SelfTimedFifo::preload(const std::vector<Word>& words) {
    if (occupancy() != 0 || words_in_ != 0) {
        throw std::logic_error("SelfTimedFifo[" + name_ + "]: preload on used FIFO");
    }
    if (words.size() > params_.depth) {
        throw std::invalid_argument("SelfTimedFifo[" + name_ +
                                    "]: preload exceeds depth");
    }
    for (std::size_t i = 0; i < words.size(); ++i) {
        stages_[params_.depth - 1 - i] = mask_word(words[i], params_.data_bits);
    }
    words_in_ += words.size();
    try_send_head();
}

}  // namespace st::achan
