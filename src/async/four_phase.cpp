#include "async/four_phase.hpp"

#include <stdexcept>

namespace st::achan {

void FourPhaseLink::send(Word w) {
    if (state_ != State::kIdle) {
        throw std::logic_error("FourPhaseLink[" + name_ + "]: send while busy");
    }
    if (sink_ == nullptr) {
        throw std::logic_error("FourPhaseLink[" + name_ + "]: no sink bound");
    }
    state_ = State::kReqFlight;
    word_ = mask_word(w, params_.data_bits);
    send_time_ = sched_.now();
    sched_.schedule_after(params_.req_delay, sim::EventTag{this, "link.req"},
                          [this] { sink_sees_req(); });
}

void FourPhaseLink::sink_sees_req() {
    if (sink_->can_accept()) {
        do_accept();
    } else {
        state_ = State::kReqPending;
    }
}

void FourPhaseLink::poke() {
    if (state_ == State::kReqPending && sink_->can_accept()) {
        do_accept();
    }
}

void FourPhaseLink::do_accept() {
    state_ = State::kAckFlight;
    sink_->accept(word_);
    // ack+ back to producer, req- forward, ack- back: the return-to-zero half
    // takes one ack_delay + one req_delay + one ack_delay. The producer's
    // *next* send is legal once the final ack- lands.
    const sim::Time rtz = params_.ack_delay + params_.req_delay +
                          params_.ack_delay;
    sched_.schedule_after(rtz, sim::EventTag{this, "link.rtz"}, [this] {
        state_ = State::kIdle;
        ++transfers_;
        last_latency_ = sched_.now() - send_time_;
        if (last_latency_ > max_latency_) max_latency_ = last_latency_;
        if (complete_) complete_();
    });
}

}  // namespace st::achan
