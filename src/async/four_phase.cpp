#include "async/four_phase.hpp"

#include <stdexcept>

namespace st::achan {

void FourPhaseLink::send(Word w) {
    if (state_ != State::kIdle) {
        throw std::logic_error("FourPhaseLink[" + name_ + "]: send while busy");
    }
    if (sink_ == nullptr) {
        throw std::logic_error("FourPhaseLink[" + name_ + "]: no sink bound");
    }
    state_ = State::kReqFlight;
    word_ = mask_word(w, params_.data_bits);
    send_time_ = sched_.now();
    pending_time_ = sched_.now() + params_.req_delay;
    pending_seq_ = sched_.schedule_after(params_.req_delay,
                                         sim::EventTag{this, "link.req"},
                                         [this] { sink_sees_req(); });
}

void FourPhaseLink::sink_sees_req() {
    if (sink_->can_accept()) {
        do_accept();
    } else {
        state_ = State::kReqPending;
    }
}

void FourPhaseLink::poke() {
    if (state_ == State::kReqPending && sink_->can_accept()) {
        do_accept();
    }
}

void FourPhaseLink::do_accept() {
    state_ = State::kAckFlight;
    sink_->accept(word_);
    // ack+ back to producer, req- forward, ack- back: the return-to-zero half
    // takes one ack_delay + one req_delay + one ack_delay. The producer's
    // *next* send is legal once the final ack- lands.
    const sim::Time rtz = params_.ack_delay + params_.req_delay +
                          params_.ack_delay;
    pending_time_ = sched_.now() + rtz;
    pending_seq_ = sched_.schedule_after(rtz, sim::EventTag{this, "link.rtz"},
                                         [this] { finish_rtz(); });
}

void FourPhaseLink::finish_rtz() {
    state_ = State::kIdle;
    ++transfers_;
    last_latency_ = sched_.now() - send_time_;
    if (last_latency_ > max_latency_) max_latency_ = last_latency_;
    if (complete_) complete_();
}

void FourPhaseLink::save_state(snap::StateWriter& w) const {
    w.begin("link4");
    w.u8(static_cast<std::uint8_t>(state_));
    w.u64(word_);
    w.u64(send_time_);
    w.u64(transfers_);
    w.u64(last_latency_);
    w.u64(max_latency_);
    if (state_ == State::kReqFlight || state_ == State::kAckFlight) {
        w.u64(pending_time_);
        w.u64(pending_seq_);
    }
    w.end();
}

void FourPhaseLink::restore_state(snap::StateReader& r) {
    r.enter("link4");
    state_ = static_cast<State>(r.u8());
    word_ = r.u64();
    send_time_ = r.u64();
    transfers_ = r.u64();
    last_latency_ = r.u64();
    max_latency_ = r.u64();
    if (state_ == State::kReqFlight || state_ == State::kAckFlight) {
        pending_time_ = r.u64();
        pending_seq_ = r.u64();
        if (state_ == State::kReqFlight) {
            sched_.rearm(pending_time_, sim::Priority::kDefault,
                         sim::EventTag{this, "link.req"}, pending_seq_,
                         [this] { sink_sees_req(); });
        } else {
            sched_.rearm(pending_time_, sim::Priority::kDefault,
                         sim::EventTag{this, "link.rtz"}, pending_seq_,
                         [this] { finish_rtz(); });
        }
    }
    r.leave();
}

}  // namespace st::achan
