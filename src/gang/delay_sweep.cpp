#include "gang/delay_sweep.hpp"

#include <memory>

namespace st::gang {

DelaySweepRunner::DelaySweepRunner(const sys::SocSpec& spec,
                                   const verify::GoldenIndex& golden,
                                   std::uint64_t cycles, sim::Time deadline,
                                   std::size_t width, bool streaming,
                                   std::uint64_t warmup,
                                   const snap::Snapshot* prefix)
    : prog_(Program::get(spec)),
      golden_(&golden),
      cycles_(cycles),
      deadline_(deadline),
      warmup_(warmup),
      prefix_(prefix) {
    if (width == 0) width = 1;
    if (prefix_ != nullptr) prefix_plan_ = snap::RewindPlan(prefix_->bytes());
    Lane::Options opt;
    opt.golden = streaming ? &golden : nullptr;
    lanes_.reserve(width);
    for (std::size_t i = 0; i < width; ++i) {
        lanes_.push_back(std::make_unique<Lane>(prog_, opt));
    }
}

std::vector<verify::TraceDiff> DelaySweepRunner::run_block(
    const sys::DelayConfig* batch, std::size_t n) {
    if (n > lanes_.size()) n = lanes_.size();
    std::vector<LaneGoal> goals(n);
    for (std::size_t i = 0; i < n; ++i) {
        Lane& lane = *lanes_[i];
        if (warmup_ > 0 && prefix_ != nullptr) {
            lane.rewind(*prefix_, &prefix_plan_);
        } else {
            lane.rewind();
            if (warmup_ > 0) {
                // Non-forked warm-up: re-simulate the nominal prefix on the
                // lane itself, exactly as sys::WarmRunner does scalar-ly.
                LaneGoal warm;
                warm.soc = &lane.soc();
                warm.cycles = warmup_;
                warm.deadline = deadline_;
                run_lockstep({warm});
                lane.soc().settle();
            }
        }
        // Perturb after the (nominal) prefix — for warmup == 0 this is the
        // pristine state, making "rewind + apply_live" the live equivalent
        // of elaborating the perturbed spec (restore-equivalence).
        sys::apply_live(lane.soc(), batch[i]);
        goals[i].soc = &lane.soc();
        goals[i].cycles = cycles_;
        goals[i].deadline = deadline_;
    }
    run_lockstep(goals);
    std::vector<verify::TraceDiff> diffs;
    diffs.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        Lane& lane = *lanes_[i];
        diffs.push_back(lane.checker() != nullptr
                            ? lane.checker()->finish()
                            : verify::diff_capture(*golden_, lane.capture()));
    }
    return diffs;
}

std::function<std::vector<verify::TraceDiff>(const sys::DelayConfig*,
                                             std::size_t)>
make_delay_block_runner(const sys::SocSpec& spec,
                        const verify::GoldenIndex& golden,
                        std::uint64_t cycles, sim::Time deadline,
                        std::size_t width, bool streaming,
                        std::uint64_t warmup, const snap::Snapshot* prefix) {
    auto runner = std::make_shared<DelaySweepRunner>(
        spec, golden, cycles, deadline, width, streaming, warmup, prefix);
    return [runner](const sys::DelayConfig* batch, std::size_t n) {
        return runner->run_block(batch, n);
    };
}

}  // namespace st::gang
