#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "snap/snapshot.hpp"
#include "snap/state_io.hpp"
#include "system/spec.hpp"

namespace st::gang {

/// The process-wide immutable half of a simulated model: everything every
/// lane, sweep context, and campaign worker elaborated from the same spec
/// would otherwise rebuild privately.
///
///   * the spec itself (topology, routing/port tables inside the kernel
///     factories' closures, clock and FIFO parameters) — held by
///     shared_ptr so a Soc elaboration references it instead of copying
///     the whole structure per case;
///   * the pristine image — the freshly-started state every case rewind
///     returns to, serialized once instead of once per lane;
///   * the image's snap::RewindPlan — the pre-validated parse plan that
///     turns each rewind's strict chunk walk into table lookups.
///
/// Programs are reference-counted in a process-wide registry keyed by
/// SocSpec::program_key, so two lanes (in the same or different workers) on
/// the same spec share one Program object: `get()` with an identical key
/// returns the identical pointer. Specs without a key (perturbed specs,
/// ad-hoc test fixtures) get a private Program via `elaborate()`; holders
/// still share it by pointer. The registry holds weak references — dropping
/// the last lane releases the Program.
class Program {
  public:
    /// Elaborate a program for `spec`, bypassing the registry (private
    /// program). The const& overload copies the spec once.
    static std::shared_ptr<const Program> elaborate(
        std::shared_ptr<const sys::SocSpec> spec);
    static std::shared_ptr<const Program> elaborate(const sys::SocSpec& spec);

    /// Registry lookup: the shared program for `spec.program_key`,
    /// elaborated on first use. An empty key degrades to elaborate().
    /// Thread-safe; a concurrent race on one key yields exactly one entry
    /// (construction happens under the registry lock).
    static std::shared_ptr<const Program> get(
        std::shared_ptr<const sys::SocSpec> spec);
    static std::shared_ptr<const Program> get(const sys::SocSpec& spec);

    const sys::SocSpec& spec() const { return *spec_; }
    const std::shared_ptr<const sys::SocSpec>& spec_ptr() const {
        return spec_;
    }
    /// Image of the freshly-started Soc: the lane reset point.
    const snap::Snapshot& pristine() const { return pristine_; }
    /// Pre-validated parse plan for pristine().
    const snap::RewindPlan& plan() const { return plan_; }
    /// Digest of the pristine image — the program's state-level identity.
    std::uint64_t digest() const { return pristine_.digest(); }

    // --- registry instrumentation (tests, perf docs) ---
    /// Live (non-expired) registry entries; purges dead ones as it counts.
    static std::size_t registry_entries();
    static std::uint64_t registry_hits();
    static std::uint64_t registry_misses();

  private:
    Program() = default;  ///< construct via elaborate()/get() only
    /// The one place Programs are born (program.cpp).
    friend std::shared_ptr<const Program> detail_build_program(
        std::shared_ptr<const sys::SocSpec> spec);

    std::shared_ptr<const sys::SocSpec> spec_;
    snap::Snapshot pristine_;
    snap::RewindPlan plan_;
};

}  // namespace st::gang
