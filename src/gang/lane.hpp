#pragma once

#include <memory>

#include "gang/program.hpp"
#include "snap/snapshot.hpp"
#include "system/invariant_monitor.hpp"
#include "system/soc.hpp"
#include "verify/streaming.hpp"
#include "verify/trace_arena.hpp"

namespace st::gang {

/// One persistent lane of the gang engine: a Soc elaborated once from the
/// *nominal* spec, plus the per-run companions a scalar case would construct
/// fresh each time — the trace capture, an (optional) attached streaming
/// checker, and an (optional) invariant monitor.
///
/// The program/state decomposition: the gang::Program — spec, pristine
/// image, and its pre-validated rewind plan — is process-wide and shared by
/// every lane on the same spec digest (one elaboration, one serialization,
/// one plan per process, not per lane). What stays per-lane is exactly what
/// a run mutates: the Soc's live state, the capture's streams, the
/// checker's verdict, the monitor's phase trackers. The reset point is
/// `pristine()` — the Program's image of the freshly started Soc, restored
/// through the plan so a rewind re-parses no framing — or any boundary
/// snapshot from an identically elaborated Soc (a campaign's shared
/// warm-up prefix, a peeled lane's mid-run handoff image).
///
/// Per-lane delay registers (clock periods, FIFO stage delays, ring hop
/// delays) are nominal after every rewind; callers perturb them with
/// `sys::apply_live`, exactly as the snapshot-forking warm-up path always
/// has. Restore-equivalence is what makes a rewound lane bit-identical to a
/// freshly elaborated scalar Soc (docs/PERF.md "Gang execution").
///
/// Construct on the thread that will run the lane (the capture pins that
/// thread's trace arena), which `runner::sweep_ctx`'s make_ctx contract
/// guarantees.
class Lane {
  public:
    struct Options {
        /// Attach a verify::StreamingChecker over this golden index
        /// (nullptr: no online checking — the batch/offline mode).
        const verify::GoldenIndex* golden = nullptr;
        /// Attach a sys::InvariantMonitor (campaign lanes: yes; pure
        /// determinism-sweep lanes: no, matching the scalar runners).
        bool monitor = false;
    };

    /// Share `program` (the normal path: every lane of a gang hands in the
    /// same Program, usually via Program::get).
    Lane(std::shared_ptr<const Program> program, const Options& opt);
    /// Convenience: resolve the program through the registry first.
    Lane(const sys::SocSpec& nominal_spec, const Options& opt)
        : Lane(Program::get(nominal_spec), opt) {}

    Lane(const Lane&) = delete;
    Lane& operator=(const Lane&) = delete;

    /// Rewind to the freshly-started nominal state. After this the lane is
    /// indistinguishable from a just-elaborated, just-started Soc of the
    /// nominal spec (with zero events executed). Uses the program's rewind
    /// plan, so no snapshot framing is re-parsed.
    void rewind();

    /// Rewind to an explicit boundary image (shared warm-up prefix, peel
    /// handoff). `extra` restores snapshot chunks beyond the Soc's own —
    /// e.g. a fuzz::Injector's trigger counters — inside the scheduler's
    /// restore window. The monitor (if any) is re-armed from the restored
    /// phases; a previously attached checker re-derives its verdict state
    /// from the replayed trace prefix. Pass the image's RewindPlan when the
    /// caller rewinds to it repeatedly (a campaign's warm-up prefix).
    void rewind(const snap::Snapshot& image,
                const sys::Soc::ExtraRestore& extra = {});
    void rewind(const snap::Snapshot& image, const snap::RewindPlan* plan,
                const sys::Soc::ExtraRestore& extra = {});

    sys::Soc& soc() { return *soc_; }
    verify::RunCapture& capture() { return cap_; }
    verify::StreamingChecker* checker() { return checker_.get(); }
    sys::InvariantMonitor* monitor() { return monitor_.get(); }
    /// The shared immutable program this lane runs.
    const std::shared_ptr<const Program>& program() const { return prog_; }
    const snap::Snapshot& pristine() const { return prog_->pristine(); }

  private:
    std::shared_ptr<const Program> prog_;
    verify::RunCapture cap_;
    std::unique_ptr<verify::StreamingChecker> checker_;
    std::unique_ptr<sys::Soc> soc_;
    std::unique_ptr<sys::InvariantMonitor> monitor_;
};

}  // namespace st::gang
