#include "gang/program.hpp"

#include <atomic>
#include <iterator>
#include <mutex>
#include <stdexcept>
#include <unordered_map>

#include "system/soc.hpp"

namespace st::gang {

namespace {

struct Registry {
    std::mutex mu;
    std::unordered_map<std::string, std::weak_ptr<const Program>> entries;
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> misses{0};
};

Registry& registry() {
    static Registry* r = new Registry;  // immortal: lanes may outlive main
    return *r;
}

}  // namespace

/// The one place Programs are born. A throwaway Soc supplies the pristine
/// image; the Program itself never holds live simulation objects, only the
/// spec and derived read-only data, so it is safe to share across threads.
std::shared_ptr<const Program> detail_build_program(
    std::shared_ptr<const sys::SocSpec> spec) {
    std::shared_ptr<Program> p(new Program);
    p->spec_ = std::move(spec);
    sys::Soc soc(p->spec_);
    soc.start();
    p->pristine_ = soc.pristine_image();
    p->plan_ = snap::RewindPlan(p->pristine_.bytes());
    return p;
}

namespace {

std::shared_ptr<const Program> build(
    std::shared_ptr<const sys::SocSpec> spec) {
    return detail_build_program(std::move(spec));
}

}  // namespace

std::shared_ptr<const Program> Program::elaborate(
    std::shared_ptr<const sys::SocSpec> spec) {
    if (!spec) throw std::invalid_argument("Program::elaborate: null spec");
    return build(std::move(spec));
}

std::shared_ptr<const Program> Program::elaborate(const sys::SocSpec& spec) {
    return build(std::make_shared<const sys::SocSpec>(spec));
}

std::shared_ptr<const Program> Program::get(
    std::shared_ptr<const sys::SocSpec> spec) {
    if (!spec) throw std::invalid_argument("Program::get: null spec");
    if (spec->program_key.empty()) return build(std::move(spec));
    Registry& reg = registry();
    // Elaboration runs under the lock: simpler than a per-key once-flag,
    // and it guarantees the exactly-one-entry property under a construction
    // race. Contention exists only while a process warms up a new spec.
    std::lock_guard<std::mutex> lock(reg.mu);
    std::weak_ptr<const Program>& slot = reg.entries[spec->program_key];
    if (std::shared_ptr<const Program> live = slot.lock()) {
        reg.hits.fetch_add(1, std::memory_order_relaxed);
        return live;
    }
    reg.misses.fetch_add(1, std::memory_order_relaxed);
    std::shared_ptr<const Program> made = build(std::move(spec));
    slot = made;
    return made;
}

std::shared_ptr<const Program> Program::get(const sys::SocSpec& spec) {
    if (spec.program_key.empty()) return elaborate(spec);
    {
        // Fast path: share the registry's spec copy instead of making one.
        Registry& reg = registry();
        std::lock_guard<std::mutex> lock(reg.mu);
        auto it = reg.entries.find(spec.program_key);
        if (it != reg.entries.end()) {
            if (std::shared_ptr<const Program> live = it->second.lock()) {
                reg.hits.fetch_add(1, std::memory_order_relaxed);
                return live;
            }
        }
    }
    return get(std::make_shared<const sys::SocSpec>(spec));
}

std::size_t Program::registry_entries() {
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    for (auto it = reg.entries.begin(); it != reg.entries.end();) {
        it = it->second.expired() ? reg.entries.erase(it) : std::next(it);
    }
    return reg.entries.size();
}

std::uint64_t Program::registry_hits() {
    return registry().hits.load(std::memory_order_relaxed);
}

std::uint64_t Program::registry_misses() {
    return registry().misses.load(std::memory_order_relaxed);
}

}  // namespace st::gang
