#include "gang/lane.hpp"

namespace st::gang {

Lane::Lane(const sys::SocSpec& nominal_spec, const Options& opt) {
    // Attachment order matches the scalar case path: checker onto the
    // capture first, then the Soc (whose ctor begins the capture's run and
    // registers the probes), then the monitor's clock observers — so every
    // per-edge callback fires in the same relative order a scalar case sees.
    if (opt.golden != nullptr) {
        checker_ = std::make_unique<verify::StreamingChecker>(*opt.golden);
        checker_->attach(cap_);
    }
    soc_ = std::make_unique<sys::Soc>(nominal_spec, &cap_);
    if (opt.monitor) {
        monitor_ = std::make_unique<sys::InvariantMonitor>(*soc_);
    }
    soc_->start();
    pristine_ = soc_->pristine_image();
}

void Lane::rewind(const snap::Snapshot& image,
                  const sys::Soc::ExtraRestore& extra) {
    soc_->reset_from_image(image, extra);
    if (monitor_) monitor_->reset();
}

}  // namespace st::gang
