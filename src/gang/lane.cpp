#include "gang/lane.hpp"

namespace st::gang {

Lane::Lane(std::shared_ptr<const Program> program, const Options& opt)
    : prog_(std::move(program)) {
    // Attachment order matches the scalar case path: checker onto the
    // capture first, then the Soc (whose ctor begins the capture's run and
    // registers the probes), then the monitor's clock observers — so every
    // per-edge callback fires in the same relative order a scalar case sees.
    if (opt.golden != nullptr) {
        checker_ = std::make_unique<verify::StreamingChecker>(*opt.golden);
        checker_->attach(cap_);
    }
    soc_ = std::make_unique<sys::Soc>(prog_->spec_ptr(), &cap_);
    if (opt.monitor) {
        monitor_ = std::make_unique<sys::InvariantMonitor>(*soc_);
    }
    soc_->start();
}

void Lane::rewind() {
    soc_->reset_from_image(prog_->pristine(), &prog_->plan());
    if (monitor_) monitor_->reset();
}

void Lane::rewind(const snap::Snapshot& image,
                  const sys::Soc::ExtraRestore& extra) {
    rewind(image, nullptr, extra);
}

void Lane::rewind(const snap::Snapshot& image, const snap::RewindPlan* plan,
                  const sys::Soc::ExtraRestore& extra) {
    soc_->reset_from_image(image, plan, extra);
    if (monitor_) monitor_->reset();
}

}  // namespace st::gang
