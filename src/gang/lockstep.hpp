#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.hpp"
#include "system/soc.hpp"
#include "verify/streaming.hpp"

namespace st::gang {

/// Sentinel for LaneGoal::budget_start: measure the event budget from the
/// lane's events_executed() at lockstep entry (the scalar run_bounded
/// datum). A peeled lane's finisher passes the *original* datum instead so
/// the livelock watchdog spans the whole case, not just the suffix.
inline constexpr std::uint64_t kBudgetFromEntry = ~0ull;

/// One lane's run goal within a lockstep block.
struct LaneGoal {
    sys::Soc* soc = nullptr;
    /// Cycle goal: run until every SB executed at least this many local
    /// cycles (absolute count — a warm-started lane keeps its prefix).
    std::uint64_t cycles = 0;
    /// Absolute simulated-time deadline (same meaning as Soc::run_cycles).
    sim::Time deadline = 0;
    /// Livelock watchdog: events beyond `budget_start` before giving up.
    std::uint64_t max_events = ~0ull;
    std::uint64_t budget_start = kBudgetFromEntry;
    /// When set (and `checker` given), a lane observed divergent mid-run is
    /// withdrawn from the gang at the next window boundary and reported
    /// `peeled` for the caller to finish on the scalar engine via snapshot
    /// handoff. Leave false where divergence either stops the run by itself
    /// (fault-free early exit) or cannot outrank the final verdict.
    bool peel_on_divergence = false;
    const verify::StreamingChecker* checker = nullptr;
};

/// What ended a lane's participation in the lockstep block.
struct LaneStatus {
    bool goal_met = false;        ///< every SB reached the cycle goal
    bool budget_expired = false;  ///< livelock watchdog fired
    bool stopped_early = false;   ///< cooperative scheduler stop
    bool peeled = false;          ///< withdrawn on divergence (still running)
    /// The events_executed() datum the budget was measured from — the
    /// handoff value a peeled lane's scalar finisher must continue with.
    std::uint64_t budget_start = 0;
};

/// Advance every lane to completion (or peel) in lockstep: round-robin over
/// the active lanes, each visit executing up to `window` events of that
/// lane's private scheduler. Per lane this is exactly the scalar bounded
/// cycle loop — same checks in the same order before every event (stop
/// request, quiescence, deadline, event budget), the laggard-SB goal scan —
/// just sliced into windows; since lanes share no simulator state, the
/// interleaving cannot alter any lane's event sequence, and each lane stops
/// at the identical event boundary the scalar engine would have stopped at.
///
/// The lockstep schedule is what turns W scalar runs into one cache-resident
/// sweep: within a window one lane's program/state stays hot, and across
/// windows all lanes advance through the same simulated-time region of the
/// same spec, touching the same golden prefix (docs/PERF.md).
///
/// Lanes must be started (gang::Lane guarantees this). A goal with
/// `soc == nullptr` is skipped (its status stays default) so callers can
/// pass partially filled blocks.
std::vector<LaneStatus> run_lockstep(const std::vector<LaneGoal>& goals,
                                     std::uint64_t window = 2048);

}  // namespace st::gang
