#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "gang/lane.hpp"
#include "gang/lockstep.hpp"
#include "system/delay_config.hpp"
#include "verify/io_trace.hpp"

namespace st::gang {

/// A per-worker gang block runner for delay-perturbation determinism
/// sweeps: runs up to `width` DelayConfig cases in lockstep on persistent
/// lanes and returns one TraceDiff per case, bit-identical to the scalar
/// streaming pipeline (sys::WarmRunner under verify::DeterminismHarness).
///
/// This is the concrete gang front-end the harness's `set_gang` hook plugs
/// in (verify::DeterminismHarness is generic in the perturbation type and
/// cannot elaborate lanes itself). Construct via make_delay_block_runner —
/// on the worker thread that will call it, per runner::sweep_ctx's
/// make_ctx contract.
class DelaySweepRunner {
  public:
    /// `golden`, `prefix` (optional warm-up fork image) and `spec` must
    /// outlive the runner. `streaming` false elides the checkers and diffs
    /// offline via verify::diff_capture (the differential/batch mode).
    DelaySweepRunner(const sys::SocSpec& spec,
                     const verify::GoldenIndex& golden, std::uint64_t cycles,
                     sim::Time deadline, std::size_t width,
                     bool streaming = true, std::uint64_t warmup = 0,
                     const snap::Snapshot* prefix = nullptr);

    DelaySweepRunner(const DelaySweepRunner&) = delete;
    DelaySweepRunner& operator=(const DelaySweepRunner&) = delete;

    /// Run `n <= width` perturbations in lockstep; diffs[i] is the verdict
    /// for batch[i].
    std::vector<verify::TraceDiff> run_block(const sys::DelayConfig* batch,
                                             std::size_t n);

    std::size_t width() const { return lanes_.size(); }

    /// The shared program this runner's lanes execute (registry-resolved
    /// from the spec's program_key — identical pointer to any other holder
    /// on the same key).
    const std::shared_ptr<const Program>& program() const { return prog_; }

  private:
    /// One shared program for every lane of this runner (and, through the
    /// registry, for every other runner on the same spec key).
    std::shared_ptr<const Program> prog_;
    const verify::GoldenIndex* golden_;
    std::uint64_t cycles_;
    sim::Time deadline_;
    std::uint64_t warmup_;
    const snap::Snapshot* prefix_;
    /// Pre-validated plan for *prefix_ — every lane of every block rewinds
    /// to the same prefix image, so parse it once.
    snap::RewindPlan prefix_plan_;
    std::vector<std::unique_ptr<Lane>> lanes_;
};

/// Shape-erased factory + block entry point for
/// DeterminismHarness<DelayConfig>::set_gang: each invocation builds one
/// worker's DelaySweepRunner (shared ownership keeps it alive inside the
/// returned callable).
std::function<std::vector<verify::TraceDiff>(const sys::DelayConfig*,
                                             std::size_t)>
make_delay_block_runner(const sys::SocSpec& spec,
                        const verify::GoldenIndex& golden,
                        std::uint64_t cycles, sim::Time deadline,
                        std::size_t width, bool streaming = true,
                        std::uint64_t warmup = 0,
                        const snap::Snapshot* prefix = nullptr);

}  // namespace st::gang
