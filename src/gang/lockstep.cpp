#include "gang/lockstep.hpp"

namespace st::gang {

namespace {

/// Per-lane progress the round-robin keeps between visits.
struct Active {
    const LaneGoal* goal = nullptr;
    LaneStatus* status = nullptr;
    std::size_t lag = 0;  ///< first SB not yet at the cycle goal
    bool done = false;
};

/// Advance one lane by at most `window` events; sets `done` when the lane
/// reached a terminal condition. Mirrors the scalar bounded cycle loop
/// check-for-check (fuzz run_bounded / Soc::run_cycles): interrupting at a
/// window boundary and resuming later re-evaluates the same conditions in
/// the same order, so the terminal event boundary is identical.
void advance(Active& a, std::uint64_t window) {
    sys::Soc& soc = *a.goal->soc;
    auto& sched = soc.scheduler();
    const std::uint64_t budget0 = a.status->budget_start;
    std::uint64_t left = window;
    for (;;) {
        while (a.lag < soc.num_sbs() &&
               soc.wrapper(a.lag).clock().cycles() >= a.goal->cycles) {
            ++a.lag;
        }
        if (a.lag == soc.num_sbs()) {
            a.done = true;
            a.status->goal_met = true;
            return;
        }
        while (soc.wrapper(a.lag).clock().cycles() < a.goal->cycles) {
            if (sched.stop_requested()) {
                a.done = true;
                a.status->stopped_early = true;
                return;
            }
            if (sched.quiescent() ||
                sched.next_event_time() > a.goal->deadline) {
                a.done = true;
                return;
            }
            if (sched.events_executed() - budget0 >= a.goal->max_events) {
                a.done = true;
                a.status->budget_expired = true;
                return;
            }
            if (left == 0) return;  // window exhausted — yield to next lane
            sched.step();
            --left;
        }
    }
}

}  // namespace

std::vector<LaneStatus> run_lockstep(const std::vector<LaneGoal>& goals,
                                     std::uint64_t window) {
    if (window == 0) window = 1;
    std::vector<LaneStatus> statuses(goals.size());
    std::vector<Active> act(goals.size());
    for (std::size_t i = 0; i < goals.size(); ++i) {
        act[i].goal = &goals[i];
        act[i].status = &statuses[i];
        if (goals[i].soc == nullptr) {
            act[i].done = true;
            continue;
        }
        goals[i].soc->start();  // idempotent; scalar run_bounded parity
        statuses[i].budget_start =
            goals[i].budget_start != kBudgetFromEntry
                ? goals[i].budget_start
                : goals[i].soc->scheduler().events_executed();
    }

    for (bool any = true; any;) {
        any = false;
        for (auto& a : act) {
            if (a.done) continue;
            // Peel check at the window boundary only: by then the lane may
            // have run a few events past the first mismatch, which is
            // harmless — the scalar finisher executes the identical suffix
            // from wherever the handoff lands, so the final state, counters
            // and verdict do not depend on the peel point.
            if (a.goal->peel_on_divergence && a.goal->checker != nullptr &&
                a.goal->checker->diverged()) {
                a.done = true;
                a.status->peeled = true;
                continue;
            }
            advance(a, window);
            any = true;
        }
    }
    return statuses;
}

}  // namespace st::gang
