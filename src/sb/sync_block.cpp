#include "sb/sync_block.hpp"

#include <stdexcept>

namespace st::sb {

SyncBlock::SyncBlock(std::string name, std::unique_ptr<Kernel> kernel)
    : name_(std::move(name)), kernel_(std::move(kernel)) {
    if (!kernel_) throw std::invalid_argument("SyncBlock: null kernel");
}

std::size_t SyncBlock::add_in_port(InPortIf* port) {
    if (port == nullptr) throw std::invalid_argument("SyncBlock: null port");
    ins_.push_back(port);
    return ins_.size() - 1;
}

std::size_t SyncBlock::add_out_port(OutPortIf* port) {
    if (port == nullptr) throw std::invalid_argument("SyncBlock: null port");
    outs_.push_back(port);
    return outs_.size() - 1;
}

void SyncBlock::sample(std::uint64_t cycle) {
    cycle_ = cycle;
    kernel_->on_cycle(*this);
    for (auto& f : observers_) f(cycle);
}

void SyncBlock::commit(std::uint64_t) {
    // Kernel state updates happen inside on_cycle (pure function of sampled
    // inputs); nothing registered at SB level needs a separate commit.
}

}  // namespace st::sb
