#include "sb/kernels/sources.hpp"

#include <stdexcept>

namespace st::sb {

LfsrSource::LfsrSource(std::uint64_t seed, unsigned emit_every)
    : state_(seed), emit_every_(emit_every) {
    if (seed == 0) throw std::invalid_argument("LfsrSource: zero seed");
    if (emit_every == 0) {
        throw std::invalid_argument("LfsrSource: emit_every must be >= 1");
    }
}

std::uint64_t LfsrSource::step() {
    // 64-bit Galois LFSR, maximal-length taps 64,63,61,60.
    const bool lsb = state_ & 1;
    state_ >>= 1;
    if (lsb) state_ ^= 0xd800000000000000ull;
    return state_;
}

void LfsrSource::on_cycle(SbContext& ctx) {
    const bool emit = (phase_++ % emit_every_) == 0;
    if (!emit) return;
    for (std::size_t i = 0; i < ctx.num_out(); ++i) {
        if (ctx.out(i).can_push()) {
            ctx.out(i).push(step());
            ++emitted_;
        }
    }
}

std::vector<std::uint64_t> LfsrSource::scan_state() const {
    return {state_, phase_, emitted_};
}

void LfsrSource::load_state(const std::vector<std::uint64_t>& image) {
    if (image.size() > 3) throw std::invalid_argument("LfsrSource: image too long");
    if (image.size() > 0) state_ = image[0];
    if (image.size() > 1) phase_ = image[1];
    if (image.size() > 2) emitted_ = image[2];
}

void CounterSource::on_cycle(SbContext& ctx) {
    for (std::size_t i = 0; i < ctx.num_out(); ++i) {
        if (ctx.out(i).can_push()) {
            ctx.out(i).push((static_cast<Word>(tag_) << 56) | (next_++ & 0xffffffffffffffull));
        }
    }
}

}  // namespace st::sb
