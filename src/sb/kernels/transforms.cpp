#include "sb/kernels/transforms.hpp"

#include <stdexcept>

namespace st::sb {

void AccumulatorKernel::on_cycle(SbContext& ctx) {
    if (ctx.num_in() == 0) return;
    auto& input = ctx.in(0);
    if (!input.has_data()) return;
    // Only consume when the result can leave, so backpressure propagates.
    if (ctx.num_out() > 0 && !ctx.out(0).can_push()) return;
    acc_ += input.take();
    ++consumed_;
    if (ctx.num_out() > 0) ctx.out(0).push(acc_);
}

FirKernel::FirKernel(std::vector<std::int32_t> taps) : taps_(std::move(taps)) {
    if (taps_.empty()) throw std::invalid_argument("FirKernel: no taps");
    delay_line_.assign(taps_.size(), 0);
}

void FirKernel::on_cycle(SbContext& ctx) {
    if (ctx.num_in() == 0 || !ctx.in(0).has_data()) return;
    if (ctx.num_out() > 0 && !ctx.out(0).can_push()) return;
    const Word sample = ctx.in(0).take();
    for (std::size_t i = delay_line_.size() - 1; i > 0; --i) {
        delay_line_[i] = delay_line_[i - 1];
    }
    delay_line_[0] = sample;
    std::uint64_t y = 0;
    for (std::size_t i = 0; i < taps_.size(); ++i) {
        y += static_cast<std::uint64_t>(taps_[i]) * delay_line_[i];
    }
    if (ctx.num_out() > 0) ctx.out(0).push(y);
}

std::vector<std::uint64_t> FirKernel::scan_state() const {
    return delay_line_;
}

void FirKernel::load_state(const std::vector<std::uint64_t>& image) {
    if (image.size() > delay_line_.size()) {
        throw std::invalid_argument("FirKernel: image too long");
    }
    for (std::size_t i = 0; i < image.size(); ++i) delay_line_[i] = image[i];
}

std::uint32_t Crc32Kernel::update(std::uint32_t crc, std::uint64_t word) {
    for (int byte = 0; byte < 8; ++byte) {
        crc ^= static_cast<std::uint32_t>((word >> (8 * byte)) & 0xff);
        for (int bit = 0; bit < 8; ++bit) {
            crc = (crc >> 1) ^ (0xedb88320u & (~(crc & 1) + 1));
        }
    }
    return crc;
}

void Crc32Kernel::on_cycle(SbContext& ctx) {
    if (ctx.num_in() == 0 || !ctx.in(0).has_data()) return;
    if (ctx.num_out() > 0 && !ctx.out(0).can_push()) return;
    crc_ = update(crc_, ctx.in(0).take());
    if (ctx.num_out() > 0) ctx.out(0).push(crc_);
}

void TransformKernel::on_cycle(SbContext& ctx) {
    const std::size_t pairs = std::min(ctx.num_in(), ctx.num_out());
    for (std::size_t i = 0; i < pairs; ++i) {
        if (ctx.in(i).has_data() && ctx.out(i).can_push()) {
            ctx.out(i).push(fn_(ctx.in(i).take()));
        }
    }
}

}  // namespace st::sb
