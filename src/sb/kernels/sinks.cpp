#include "sb/kernels/sinks.hpp"

namespace st::sb {

void RecorderSink::on_cycle(SbContext& ctx) {
    for (std::size_t i = 0; i < ctx.num_in(); ++i) {
        if (ctx.in(i).has_data()) {
            samples_.push_back(Sample{ctx.local_cycle(), i, ctx.in(i).take()});
        }
    }
}

void CheckerSink::on_cycle(SbContext& ctx) {
    for (std::size_t i = 0; i < ctx.num_in(); ++i) {
        if (ctx.in(i).has_data()) {
            const Word got = ctx.in(i).take();
            if (got != golden_(consumed_)) ++mismatches_;
            ++consumed_;
        }
    }
}

}  // namespace st::sb
