#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sb/kernel.hpp"

namespace st::sb {

/// Consumes every available word on every input port and records
/// (local cycle, port, word) triples — the raw material of the determinism
/// experiment's per-SB I/O trace.
class RecorderSink final : public Kernel {
  public:
    struct Sample {
        std::uint64_t cycle = 0;
        std::size_t port = 0;
        Word word = 0;
        bool operator==(const Sample&) const = default;
    };

    void on_cycle(SbContext& ctx) override;

    const std::vector<Sample>& samples() const { return samples_; }
    std::uint64_t words_consumed() const { return samples_.size(); }

    std::vector<std::uint64_t> scan_state() const override {
        return {samples_.size()};
    }

    /// The scan image exposes only the sample count; the snapshot must
    /// carry the full log so a restored run replays into an identical one.
    void save_state(snap::StateWriter& w) const override {
        w.begin("recorder");
        w.u64(samples_.size());
        for (const auto& s : samples_) {
            w.u64(s.cycle);
            w.u64(s.port);
            w.u64(s.word);
        }
        w.end();
    }
    void restore_state(snap::StateReader& r) override {
        r.enter("recorder");
        const std::uint64_t n = r.u64();
        samples_.clear();
        samples_.reserve(static_cast<std::size_t>(n));
        for (std::uint64_t i = 0; i < n; ++i) {
            Sample s;
            s.cycle = r.u64();
            s.port = static_cast<std::size_t>(r.u64());
            s.word = r.u64();
            samples_.push_back(s);
        }
        r.leave();
    }

  private:
    std::vector<Sample> samples_;
};

/// Consumes words and checks them against a golden generator function
/// word_index -> expected value; counts mismatches.
class CheckerSink final : public Kernel {
  public:
    explicit CheckerSink(std::function<Word(std::uint64_t)> golden)
        : golden_(std::move(golden)) {}

    void on_cycle(SbContext& ctx) override;

    std::uint64_t words_consumed() const { return consumed_; }
    std::uint64_t mismatches() const { return mismatches_; }

    /// Counters live outside the scan image (no scan_state override).
    void save_state(snap::StateWriter& w) const override {
        w.begin("checker");
        w.u64(consumed_);
        w.u64(mismatches_);
        w.end();
    }
    void restore_state(snap::StateReader& r) override {
        r.enter("checker");
        consumed_ = r.u64();
        mismatches_ = r.u64();
        r.leave();
    }

  private:
    std::function<Word(std::uint64_t)> golden_;
    std::uint64_t consumed_ = 0;
    std::uint64_t mismatches_ = 0;
};

}  // namespace st::sb
