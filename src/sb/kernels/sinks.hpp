#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sb/kernel.hpp"

namespace st::sb {

/// Consumes every available word on every input port and records
/// (local cycle, port, word) triples — the raw material of the determinism
/// experiment's per-SB I/O trace.
class RecorderSink final : public Kernel {
  public:
    struct Sample {
        std::uint64_t cycle = 0;
        std::size_t port = 0;
        Word word = 0;
        bool operator==(const Sample&) const = default;
    };

    void on_cycle(SbContext& ctx) override;

    const std::vector<Sample>& samples() const { return samples_; }
    std::uint64_t words_consumed() const { return samples_.size(); }

    std::vector<std::uint64_t> scan_state() const override {
        return {samples_.size()};
    }

  private:
    std::vector<Sample> samples_;
};

/// Consumes words and checks them against a golden generator function
/// word_index -> expected value; counts mismatches.
class CheckerSink final : public Kernel {
  public:
    explicit CheckerSink(std::function<Word(std::uint64_t)> golden)
        : golden_(std::move(golden)) {}

    void on_cycle(SbContext& ctx) override;

    std::uint64_t words_consumed() const { return consumed_; }
    std::uint64_t mismatches() const { return mismatches_; }

  private:
    std::function<Word(std::uint64_t)> golden_;
    std::uint64_t consumed_ = 0;
    std::uint64_t mismatches_ = 0;
};

}  // namespace st::sb
