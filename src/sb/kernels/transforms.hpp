#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "sb/kernel.hpp"

namespace st::sb {

/// Running-sum pipeline stage: consumes one word per cycle from input 0,
/// accumulates, forwards the accumulator value to output 0.
class AccumulatorKernel final : public Kernel {
  public:
    void on_cycle(SbContext& ctx) override;

    std::vector<std::uint64_t> scan_state() const override {
        return {acc_, consumed_};
    }
    void load_state(const std::vector<std::uint64_t>& image) override {
        if (image.size() > 0) acc_ = image[0];
        if (image.size() > 1) consumed_ = image[1];
    }

    std::uint64_t accumulator() const { return acc_; }
    std::uint64_t words_consumed() const { return consumed_; }

  private:
    std::uint64_t acc_ = 0;
    std::uint64_t consumed_ = 0;
};

/// Integer FIR filter over the incoming sample stream (the DSP-style core
/// the paper's escapement predecessor [12] targeted). Taps are fixed at
/// construction; one sample in, one filtered sample out.
class FirKernel final : public Kernel {
  public:
    explicit FirKernel(std::vector<std::int32_t> taps);

    void on_cycle(SbContext& ctx) override;

    std::vector<std::uint64_t> scan_state() const override;
    void load_state(const std::vector<std::uint64_t>& image) override;

  private:
    std::vector<std::int32_t> taps_;
    std::vector<std::uint64_t> delay_line_;  // newest first
};

/// CRC-32 (IEEE 802.3, bitwise) over every consumed word; emits the running
/// CRC after each update. A compact "signature analyzer" core: any
/// nondeterminism upstream scrambles its entire output tail, which makes it
/// an aggressive determinism witness.
class Crc32Kernel final : public Kernel {
  public:
    void on_cycle(SbContext& ctx) override;

    std::vector<std::uint64_t> scan_state() const override { return {crc_}; }
    void load_state(const std::vector<std::uint64_t>& image) override {
        if (!image.empty()) crc_ = static_cast<std::uint32_t>(image[0]);
    }

    std::uint32_t crc() const { return crc_; }

    /// Pure CRC update exposed for golden-model checking in tests.
    static std::uint32_t update(std::uint32_t crc, std::uint64_t word);

  private:
    std::uint32_t crc_ = 0xffffffffu;
};

/// Stateless word transformer: out(i) = fn(in(i)) for every paired port.
class TransformKernel final : public Kernel {
  public:
    explicit TransformKernel(std::function<Word(Word)> fn)
        : fn_(std::move(fn)) {}

    void on_cycle(SbContext& ctx) override;

  private:
    std::function<Word(Word)> fn_;
};

}  // namespace st::sb
