#pragma once

#include <cstdint>

#include "sb/kernel.hpp"

namespace st::sb {

/// Pseudo-random traffic source: a Galois LFSR emits one word per cycle into
/// every output port that can accept one. The emitted sequence depends only
/// on the seed and on *how many* words each port accepted — so under a
/// deterministic enable schedule the stream each consumer sees is unique.
class LfsrSource final : public Kernel {
  public:
    /// `seed` must be nonzero. `emit_every` > 1 throttles production.
    explicit LfsrSource(std::uint64_t seed, unsigned emit_every = 1);

    void on_cycle(SbContext& ctx) override;

    std::vector<std::uint64_t> scan_state() const override;
    void load_state(const std::vector<std::uint64_t>& image) override;

    std::uint64_t words_emitted() const { return emitted_; }
    std::uint64_t state() const { return state_; }

  private:
    std::uint64_t step();

    std::uint64_t state_;
    unsigned emit_every_;
    std::uint64_t phase_ = 0;
    std::uint64_t emitted_ = 0;
};

/// Sequential-number source: emits 0,1,2,... tagged with a block id in the
/// upper byte, making interleaving errors obvious in traces.
class CounterSource final : public Kernel {
  public:
    explicit CounterSource(std::uint8_t tag) : tag_(tag) {}

    void on_cycle(SbContext& ctx) override;

    std::vector<std::uint64_t> scan_state() const override { return {next_}; }
    void load_state(const std::vector<std::uint64_t>& image) override {
        if (!image.empty()) next_ = image[0];
    }

    std::uint64_t words_emitted() const { return next_; }

  private:
    std::uint8_t tag_;
    std::uint64_t next_ = 0;
};

}  // namespace st::sb
