#pragma once

#include <cstdint>
#include <vector>

#include "sb/ports.hpp"
#include "snap/state_io.hpp"

namespace st::sb {

/// Port bundle a kernel computes against each cycle.
class SbContext {
  public:
    virtual ~SbContext() = default;
    virtual std::size_t num_in() const = 0;
    virtual std::size_t num_out() const = 0;
    virtual InPortIf& in(std::size_t i) = 0;
    virtual OutPortIf& out(std::size_t i) = 0;
    virtual std::uint64_t local_cycle() const = 0;
};

/// User logic of a synchronous block.
///
/// `on_cycle` runs in the sample phase of every local clock edge (stopped
/// clocks produce no edges, so a kernel never observes a stalled cycle —
/// exactly like synchronous hardware behind an escapement clock).
///
/// Kernels are *delay-insensitive synchronous logic* in the paper's sense:
/// next state and outputs are a pure function of current state and sampled
/// inputs, so any nondeterminism an SB exhibits comes from its input
/// sequence, never from the kernel itself.
class Kernel {
  public:
    virtual ~Kernel() = default;

    /// Compute one local clock cycle against the port bundle.
    virtual void on_cycle(SbContext& ctx) = 0;

    /// Expose internal registers for scan-chain debug access (TAP module).
    virtual std::vector<std::uint64_t> scan_state() const { return {}; }

    /// Overwrite internal registers from a scanned-in image. Images shorter
    /// than scan_state() update a prefix; longer images are an error.
    virtual void load_state(const std::vector<std::uint64_t>& image) {
        (void)image;
    }

    /// Snapshot hook. The default round-trips through the scan chain image
    /// (scan_state/load_state), which is complete for register-file kernels.
    /// Kernels with state outside the scan image (growing sample logs,
    /// deques, pending queues) must override both methods.
    virtual void save_state(snap::StateWriter& w) const {
        w.begin("kernel");
        const auto img = scan_state();
        w.u64(img.size());
        for (const auto v : img) w.u64(v);
        w.end();
    }
    virtual void restore_state(snap::StateReader& r) {
        r.enter("kernel");
        const std::uint64_t n = r.u64();
        std::vector<std::uint64_t> img;
        img.reserve(static_cast<std::size_t>(n));
        for (std::uint64_t i = 0; i < n; ++i) img.push_back(r.u64());
        load_state(img);
        r.leave();
    }
};

}  // namespace st::sb
