#pragma once

#include <cstdint>
#include <vector>

#include "sb/ports.hpp"

namespace st::sb {

/// Port bundle a kernel computes against each cycle.
class SbContext {
  public:
    virtual ~SbContext() = default;
    virtual std::size_t num_in() const = 0;
    virtual std::size_t num_out() const = 0;
    virtual InPortIf& in(std::size_t i) = 0;
    virtual OutPortIf& out(std::size_t i) = 0;
    virtual std::uint64_t local_cycle() const = 0;
};

/// User logic of a synchronous block.
///
/// `on_cycle` runs in the sample phase of every local clock edge (stopped
/// clocks produce no edges, so a kernel never observes a stalled cycle —
/// exactly like synchronous hardware behind an escapement clock).
///
/// Kernels are *delay-insensitive synchronous logic* in the paper's sense:
/// next state and outputs are a pure function of current state and sampled
/// inputs, so any nondeterminism an SB exhibits comes from its input
/// sequence, never from the kernel itself.
class Kernel {
  public:
    virtual ~Kernel() = default;

    /// Compute one local clock cycle against the port bundle.
    virtual void on_cycle(SbContext& ctx) = 0;

    /// Expose internal registers for scan-chain debug access (TAP module).
    virtual std::vector<std::uint64_t> scan_state() const { return {}; }

    /// Overwrite internal registers from a scanned-in image. Images shorter
    /// than scan_state() update a prefix; longer images are an error.
    virtual void load_state(const std::vector<std::uint64_t>& image) {
        (void)image;
    }
};

}  // namespace st::sb
