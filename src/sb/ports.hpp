#pragma once

#include <cstdint>

#include "async/types.hpp"

namespace st::sb {

/// SB-side view of a channel input (paper Fig. 1B: Data / Valid / Empty).
///
/// Implemented by the wrapper's input interface. All methods are meant to be
/// called from a kernel's `on_cycle` (the sample phase): `has_data()` reflects
/// the word latched for the *current* local cycle; `take()` consumes it (the
/// latch frees and the next asynchronous handshake proceeds at commit).
class InPortIf {
  public:
    virtual ~InPortIf() = default;

    /// A word is available this cycle (interface enabled and latch full).
    virtual bool has_data() const = 0;

    /// The latched word. Precondition: has_data().
    virtual Word peek() const = 0;

    /// Consume the latched word this cycle. Precondition: has_data().
    virtual Word take() = 0;
};

/// SB-side view of a channel output (paper Fig. 1B: Data / Valid / Full).
///
/// Implemented by the wrapper's output interface. `can_push()` is false when
/// the interface is disabled (node not holding the token) or the FIFO is
/// exerting backpressure (Full).
class OutPortIf {
  public:
    virtual ~OutPortIf() = default;

    /// The interface can accept a word this cycle.
    virtual bool can_push() const = 0;

    /// Hand a word to the interface; the four-phase handshake into the FIFO
    /// launches at this cycle's commit. Precondition: can_push().
    virtual void push(Word w) = 0;
};

}  // namespace st::sb
