#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "clock/clock_sink.hpp"
#include "sb/kernel.hpp"
#include "sb/ports.hpp"
#include "snap/snapshot.hpp"

namespace st::sb {

/// A synchronous block: one core of the GALS SoC.
///
/// Hosts a Kernel, adapts it to the two-phase ClockSink protocol, and gives
/// it a stable, index-addressed bundle of channel ports. The wrapper (module
/// `synchro`) registers port implementations here during elaboration.
class SyncBlock final : public clk::ClockSink,
                        public SbContext,
                        public snap::Snapshottable {
  public:
    explicit SyncBlock(std::string name, std::unique_ptr<Kernel> kernel);

    SyncBlock(const SyncBlock&) = delete;
    SyncBlock& operator=(const SyncBlock&) = delete;

    /// Wire a channel port (elaboration time). Returns the port index.
    std::size_t add_in_port(InPortIf* port);
    std::size_t add_out_port(OutPortIf* port);

    // --- ClockSink ---
    void sample(std::uint64_t cycle) override;
    void commit(std::uint64_t cycle) override;

    // --- SbContext ---
    std::size_t num_in() const override { return ins_.size(); }
    std::size_t num_out() const override { return outs_.size(); }
    InPortIf& in(std::size_t i) override { return *ins_.at(i); }
    OutPortIf& out(std::size_t i) override { return *outs_.at(i); }
    std::uint64_t local_cycle() const override { return cycle_; }

    const std::string& name() const { return name_; }
    Kernel& kernel() { return *kernel_; }
    const Kernel& kernel() const { return *kernel_; }

    /// Observer invoked every cycle after the kernel ran (sample phase);
    /// used for cycle-indexed trace capture.
    void on_cycle_observer(std::function<void(std::uint64_t)> fn) {
        observers_.push_back(std::move(fn));
    }

    /// Snapshot: local-cycle register plus the kernel's state.
    void save_state(snap::StateWriter& w) const override {
        w.begin_group("sb");
        w.begin("regs");
        w.u64(cycle_);
        w.end();
        kernel_->save_state(w);
        w.end();
    }
    void restore_state(snap::StateReader& r) override {
        r.enter("sb");
        r.enter("regs");
        cycle_ = r.u64();
        r.leave();
        kernel_->restore_state(r);
        r.leave();
    }

  private:
    std::string name_;
    std::unique_ptr<Kernel> kernel_;
    std::vector<InPortIf*> ins_;
    std::vector<OutPortIf*> outs_;
    std::vector<std::function<void(std::uint64_t)>> observers_;
    std::uint64_t cycle_ = 0;
};

}  // namespace st::sb
