#include "clock/stoppable_clock.hpp"

#include <stdexcept>

namespace st::clk {

StoppableClock::StoppableClock(sim::Scheduler& sched, std::string name,
                               Params p)
    : sched_(sched), name_(std::move(name)), params_(p) {
    if (params_.base_period == 0) {
        throw std::invalid_argument("StoppableClock: zero period");
    }
    if (params_.divider == 0) {
        throw std::invalid_argument("StoppableClock: zero divider");
    }
}

void StoppableClock::add_sink(ClockSink* sink) {
    if (sink == nullptr) {
        throw std::invalid_argument("StoppableClock: null sink");
    }
    sinks_.push_back(sink);
}

void StoppableClock::set_divider(unsigned d) {
    if (d == 0) throw std::invalid_argument("StoppableClock: zero divider");
    params_.divider = d;
}

void StoppableClock::set_base_period(sim::Time p) {
    if (p == 0) throw std::invalid_argument("StoppableClock: zero period");
    params_.base_period = p;
}

void StoppableClock::start() {
    if (started_) return;
    started_ = true;
    schedule_edge(params_.phase);
}

void StoppableClock::schedule_edge(sim::Time t) {
    edge_pending_ = true;
    sched_.schedule_at(t, sim::Priority::kClockEdge,
                       sim::EventTag{this, "clock.edge"}, [this] { edge(); });
}

void StoppableClock::edge() {
    edge_pending_ = false;
    if (halted_) return;
    const std::uint64_t cycle = cycles_++;
    const sim::Time t = sched_.now();

    // Phase 1: all sinks sample registered state.
    for (auto* s : sinks_) s->sample(cycle);

    // Phase 2: all sinks commit new state.
    sched_.schedule_at(t, sim::Priority::kCommit,
                       sim::EventTag{this, "clock.commit"}, [this, cycle] {
        for (auto* s : sinks_) s->commit(cycle);
    });

    // Phase 3: evaluate the (now committed) enable and decide whether the
    // ring oscillator produces another edge.
    sched_.schedule_at(t, sim::Priority::kPostCommit,
                       sim::EventTag{this, "clock.gate"}, [this, t] {
        if (halted_) return;
        const bool enabled = !enable_fn_ || enable_fn_();
        if (enabled) {
            schedule_edge(t + effective_period());
        } else {
            stopped_ = true;
            stop_began_ = t;
            ++stop_events_;
        }
    });

    // Monitors observe the fully settled post-edge state.
    if (!edge_observers_.empty()) {
        sched_.schedule_at(t, sim::Priority::kMonitor,
                           sim::EventTag{this, "clock.monitor"},
                           [this, cycle, t] {
            for (auto& f : edge_observers_) f(cycle, t);
        });
    }
}

void StoppableClock::async_restart() {
    if (!started_ || halted_ || !stopped_) return;
    stopped_ = false;
    total_stopped_ += sched_.now() - stop_began_;
    if (!edge_pending_) {
        const sim::Time glitch = restart_fault_ ? restart_fault_() : 0;
        schedule_edge(sched_.now() + params_.restart_delay + glitch);
    }
}

}  // namespace st::clk
