#include "clock/stoppable_clock.hpp"

#include <stdexcept>

namespace st::clk {

StoppableClock::StoppableClock(sim::Scheduler& sched, std::string name,
                               Params p)
    : sched_(sched), name_(std::move(name)), params_(p) {
    if (params_.base_period == 0) {
        throw std::invalid_argument("StoppableClock: zero period");
    }
    if (params_.divider == 0) {
        throw std::invalid_argument("StoppableClock: zero divider");
    }
}

void StoppableClock::add_sink(ClockSink* sink) {
    if (sink == nullptr) {
        throw std::invalid_argument("StoppableClock: null sink");
    }
    sinks_.push_back(sink);
}

void StoppableClock::set_divider(unsigned d) {
    if (d == 0) throw std::invalid_argument("StoppableClock: zero divider");
    params_.divider = d;
}

void StoppableClock::set_base_period(sim::Time p) {
    if (p == 0) throw std::invalid_argument("StoppableClock: zero period");
    params_.base_period = p;
}

void StoppableClock::start() {
    if (started_) return;
    started_ = true;
    schedule_edge(params_.phase);
}

void StoppableClock::schedule_edge(sim::Time t) {
    edge_pending_ = true;
    edge_time_ = t;
    edge_seq_ =
        sched_.schedule_at(t, sim::Priority::kClockEdge,
                           sim::EventTag{this, "clock.edge"},
                           [this] { edge(); });
}

void StoppableClock::edge() {
    edge_pending_ = false;
    if (halted_) return;
    const std::uint64_t cycle = cycles_++;
    const sim::Time t = sched_.now();

    // Phase 1: all sinks sample registered state.
    for (auto* s : sinks_) s->sample(cycle);

    // Phase 2: all sinks commit new state.
    sched_.schedule_at(t, sim::Priority::kCommit,
                       sim::EventTag{this, "clock.commit"}, [this, cycle] {
        for (auto* s : sinks_) s->commit(cycle);
    });

    // Phase 3: evaluate the (now committed) enable and decide whether the
    // ring oscillator produces another edge.
    sched_.schedule_at(t, sim::Priority::kPostCommit,
                       sim::EventTag{this, "clock.gate"}, [this, t] {
        if (halted_) return;
        const bool enabled = !enable_fn_ || enable_fn_();
        if (enabled) {
            schedule_edge(t + effective_period());
        } else {
            stopped_ = true;
            stop_began_ = t;
            ++stop_events_;
        }
    });

    // Monitors observe the fully settled post-edge state.
    if (!edge_observers_.empty() && observe_edges_) {
        sched_.schedule_at(t, sim::Priority::kMonitor,
                           sim::EventTag{this, "clock.monitor"},
                           [this, cycle, t] {
            for (auto& f : edge_observers_) f(cycle, t);
        });
    }
}

void StoppableClock::save_state(snap::StateWriter& w) const {
    w.begin("clk");
    w.u64(params_.base_period);
    w.u32(params_.divider);
    w.u64(params_.phase);
    w.u64(params_.restart_delay);
    w.b(started_);
    w.b(halted_);
    w.b(stopped_);
    w.b(edge_pending_);
    w.u64(cycles_);
    w.u64(stop_began_);
    w.u64(total_stopped_);
    w.u64(stop_events_);
    if (edge_pending_) {
        w.u64(edge_time_);
        w.u64(edge_seq_);
    }
    w.end();
}

void StoppableClock::restore_state(snap::StateReader& r) {
    r.enter("clk");
    params_.base_period = r.u64();
    params_.divider = r.u32();
    params_.phase = r.u64();
    params_.restart_delay = r.u64();
    started_ = r.b();
    halted_ = r.b();
    stopped_ = r.b();
    edge_pending_ = r.b();
    cycles_ = r.u64();
    stop_began_ = r.u64();
    total_stopped_ = r.u64();
    stop_events_ = r.u64();
    if (edge_pending_) {
        edge_time_ = r.u64();
        edge_seq_ = r.u64();
        sched_.rearm(edge_time_, sim::Priority::kClockEdge,
                     sim::EventTag{this, "clock.edge"}, edge_seq_,
                     [this] { edge(); });
    }
    r.leave();
}

void StoppableClock::async_restart() {
    if (!started_ || halted_ || !stopped_) return;
    stopped_ = false;
    total_stopped_ += sched_.now() - stop_began_;
    if (!edge_pending_) {
        const sim::Time glitch = restart_fault_ ? restart_fault_() : 0;
        schedule_edge(sched_.now() + params_.restart_delay + glitch);
    }
}

}  // namespace st::clk
