#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "clock/clock_sink.hpp"
#include "sim/scheduler.hpp"
#include "snap/snapshot.hpp"

namespace st::clk {

/// Stoppable local clock modelling the paper's escapement ring oscillator.
///
/// Semantics (paper §2, Chapiro's escapement organization):
///  * the enable is evaluated *synchronously*, once per edge, after all
///    clocked processes have committed — a deasserted enable means the next
///    edge is simply never generated ("the clock enable interrupts the ring
///    oscillator instead of gating its output"),
///  * `async_restart()` restarts a stopped clock asynchronously with a
///    configurable restart latency; because only full edges are modelled the
///    restart is runt-pulse-free by construction,
///  * frequency is digitally controllable: a base ring period (variable delay
///    inverters) times an output divider (paper §4.1).
///
/// The cycle counter gives every edge a *local cycle index*; the determinism
/// property of synchro-tokens is stated in this index space (DESIGN.md §5).
class StoppableClock : public snap::Snapshottable {
  public:
    struct Params {
        sim::Time base_period = 1000;    ///< ring oscillator period, ps
        unsigned divider = 1;            ///< output clock divider setting
        sim::Time phase = 0;             ///< absolute time of the first edge
        sim::Time restart_delay = 50;    ///< async restart latency, ps
    };

    StoppableClock(sim::Scheduler& sched, std::string name, Params p);

    StoppableClock(const StoppableClock&) = delete;
    StoppableClock& operator=(const StoppableClock&) = delete;

    /// Register a clocked process. Sample/commit run over sinks in
    /// registration order (behaviour must not depend on it; see ClockSink).
    void add_sink(ClockSink* sink);

    /// Enable function evaluated after each edge's commit phase; typically
    /// the AND of all wrapper-node clken outputs. Defaults to always-on.
    void set_enable_fn(std::function<bool()> fn) { enable_fn_ = std::move(fn); }

    /// Schedule the first edge (at `phase`). Idempotent.
    void start();

    /// Asynchronously restart a stopped clock (token arrival). No-op when
    /// the clock is running or was never started.
    void async_restart();

    /// Permanently halt (end of simulation teardown).
    void halt() { halted_ = true; }

    const std::string& name() const { return name_; }
    std::uint64_t cycles() const { return cycles_; }
    bool stopped() const { return stopped_; }
    sim::Time effective_period() const {
        return params_.base_period * params_.divider;
    }

    /// Digital frequency controls (loadable from the tester via TAP).
    void set_divider(unsigned d);
    void set_base_period(sim::Time p);
    unsigned divider() const { return params_.divider; }
    sim::Time base_period() const { return params_.base_period; }

    /// Stall statistics: cumulative time spent stopped and stop count.
    sim::Time total_stopped_time() const { return total_stopped_; }
    std::uint64_t stop_events() const { return stop_events_; }

    /// Opt-in fault hook (fuzz harness): extra latency added to the next
    /// asynchronous restart edge — a restart glitch in the escapement logic.
    /// Consulted once per restart that actually schedules an edge.
    void set_restart_fault(std::function<sim::Time()> fn) {
        restart_fault_ = std::move(fn);
    }

    /// Observer invoked at each rising edge (monitor priority) — used by
    /// trace capture.
    void on_edge(std::function<void(std::uint64_t cycle, sim::Time t)> fn) {
        edge_observers_.push_back(std::move(fn));
    }

    /// Gate for the per-edge observer event. While disabled the clock
    /// schedules no monitor-priority observer event at all, making the
    /// event stream identical to a clock with no observers registered.
    /// Execution-mode toggle, not model state: deliberately not
    /// serialized. Used by the gang engine to re-simulate a warmup prefix
    /// with the same event count as a scalar run that attaches its
    /// monitors only after warmup.
    void set_edge_observers_enabled(bool on) { observe_edges_ = on; }

    sim::Scheduler& scheduler() const { return sched_; }

    /// Snapshot: full register state plus the fire slot of the pending
    /// edge event (if any), which restore_state re-arms. Taken only at
    /// slot boundaries, so the same-time commit/gate/monitor events are
    /// never in flight.
    void save_state(snap::StateWriter& w) const override;
    void restore_state(snap::StateReader& r) override;

  private:
    void schedule_edge(sim::Time t);
    void edge();

    sim::Scheduler& sched_;
    std::string name_;
    Params params_;
    std::vector<ClockSink*> sinks_;
    std::function<bool()> enable_fn_;
    std::function<sim::Time()> restart_fault_;
    std::vector<std::function<void(std::uint64_t, sim::Time)>> edge_observers_;
    bool observe_edges_ = true;

    bool started_ = false;
    bool halted_ = false;
    bool stopped_ = false;
    bool edge_pending_ = false;
    std::uint64_t cycles_ = 0;
    sim::Time stop_began_ = 0;
    sim::Time total_stopped_ = 0;
    std::uint64_t stop_events_ = 0;
    // Fire slot of the pending edge event, valid while edge_pending_.
    sim::Time edge_time_ = 0;
    std::uint64_t edge_seq_ = 0;
};

}  // namespace st::clk
