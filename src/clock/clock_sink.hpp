#pragma once

#include <cstdint>

namespace st::clk {

/// A clocked process attached to a local clock.
///
/// Every rising edge runs in two phases across *all* sinks of the clock:
/// first every sink `sample()`s (reads other sinks' registered outputs),
/// then every sink `commit()`s (updates its own registered state). This
/// models flip-flop simultaneity: no sink ever observes another sink's
/// same-edge update during sample, so registration order cannot change
/// behaviour.
class ClockSink {
  public:
    virtual ~ClockSink() = default;

    /// Phase 1: read inputs. Must not mutate state visible to other sinks.
    virtual void sample(std::uint64_t cycle) = 0;

    /// Phase 2: update registered state / launch outputs.
    virtual void commit(std::uint64_t cycle) = 0;
};

}  // namespace st::clk
