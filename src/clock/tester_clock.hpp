#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "clock/clock_sink.hpp"
#include "sim/scheduler.hpp"
#include "snap/snapshot.hpp"

namespace st::clk {

/// Externally driven test clock (the TCK pin).
///
/// Unlike StoppableClock, edges are produced only when the host-side tester
/// model calls `pulse()` — there is no free-running oscillator. An optional
/// *interlock* gate (paper §4.2, Interlocked Mode) can swallow edges: when the
/// gate function returns false the pulse is absorbed and reported to the
/// tester as a wait state, keeping tester/SoC data exchange deterministic.
class TesterClock : public snap::Snapshottable {
  public:
    explicit TesterClock(sim::Scheduler& sched, std::string name = "tck")
        : sched_(sched), name_(std::move(name)) {}

    TesterClock(const TesterClock&) = delete;
    TesterClock& operator=(const TesterClock&) = delete;

    void add_sink(ClockSink* sink) { sinks_.push_back(sink); }

    /// Interlock gate; nullptr (default) means every pulse lands.
    void set_gate_fn(std::function<bool()> fn) { gate_fn_ = std::move(fn); }

    /// Drive one TCK rising edge *now*. Returns true if the edge was
    /// delivered, false if the interlock swallowed it (a tester wait state).
    bool pulse();

    std::uint64_t cycles() const { return cycles_; }
    std::uint64_t swallowed() const { return swallowed_; }
    const std::string& name() const { return name_; }

    /// Snapshot: counters only — TCK has no free-running event in flight,
    /// every edge is host-driven.
    void save_state(snap::StateWriter& w) const override {
        w.begin("tck");
        w.u64(cycles_);
        w.u64(swallowed_);
        w.end();
    }
    void restore_state(snap::StateReader& r) override {
        r.enter("tck");
        cycles_ = r.u64();
        swallowed_ = r.u64();
        r.leave();
    }

  private:
    sim::Scheduler& sched_;
    std::string name_;
    std::vector<ClockSink*> sinks_;
    std::function<bool()> gate_fn_;
    std::uint64_t cycles_ = 0;
    std::uint64_t swallowed_ = 0;
};

}  // namespace st::clk
