#include "clock/tester_clock.hpp"

namespace st::clk {

bool TesterClock::pulse() {
    if (gate_fn_ && !gate_fn_()) {
        ++swallowed_;
        return false;
    }
    const std::uint64_t cycle = cycles_++;
    for (auto* s : sinks_) s->sample(cycle);
    for (auto* s : sinks_) s->commit(cycle);
    return true;
}

}  // namespace st::clk
